"""Persistence for the ETA2 closed loop.

A deployed crowdsourcing server runs for many time steps; restarting it must
not forget what it learned.  This module serialises the two stateful pieces
of :class:`~repro.core.pipeline.ETA2System` — the expertise updater's running
``N``/``D`` sums and the dynamic clustering's points/domains — to plain JSON
(arrays as nested lists), and restores them.

The embedding model is *not* serialised: it is deterministic given its
configuration (the default backend is rebuilt from the bundled corpus), and
hash-backed models carry no state at all.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable

import numpy as np

from repro.clustering.dynamic import DynamicHierarchicalClustering
from repro.core.pipeline import ETA2System
from repro.core.update import ExpertiseUpdater

__all__ = [
    "updater_to_dict",
    "updater_from_dict",
    "clustering_to_dict",
    "clustering_from_dict",
    "system_state_to_dict",
    "apply_system_state",
    "save_system_state",
    "load_system_state",
    "state_fingerprint",
    "atomic_write_text",
    "fsync_directory",
]

_FORMAT_VERSION = 1


def fsync_directory(path: "str | Path") -> None:
    """``fsync`` a directory so renames/creations inside it survive power loss.

    ``os.replace`` makes a rename atomic but not durable: the directory
    entry lives in the parent's metadata, which the kernel may keep dirty
    until the directory itself is synced.  Platforms without directory
    fsync (opening a directory raises) are tolerated silently — there is
    nothing stronger available there.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: "str | Path", text: str, writer: "Callable | None" = None) -> None:
    """Write ``text`` to ``path`` atomically and durably.

    Temp file + ``fsync`` + ``os.replace`` + parent-directory ``fsync``: a
    crash at any point leaves either the old file or the new file at
    ``path`` — never a half-written mixture — and once this returns the
    rename survives power loss.  A stray ``<name>.tmp`` may survive an
    interrupted write; it is ignored by all readers and overwritten by the
    next save.

    ``writer`` is a fault-injection hook taking ``(path, text)`` (see
    :func:`repro.reliability.faults.crashing_writer`); the default writes
    with :meth:`Path.write_text`.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    if writer is None:
        tmp.write_text(text)
    else:
        writer(tmp, text)
    fd = os.open(tmp, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    fsync_directory(path.parent)


def updater_to_dict(updater: ExpertiseUpdater) -> dict:
    """Snapshot an :class:`ExpertiseUpdater` as JSON-compatible data."""
    return {
        "n_users": updater.n_users,
        "alpha": updater.alpha,
        "numerators": {str(d): updater._numerators[d].tolist() for d in updater.domain_ids},
        "denominators": {str(d): updater._denominators[d].tolist() for d in updater.domain_ids},
    }


def updater_from_dict(data: dict) -> ExpertiseUpdater:
    """Rebuild an :class:`ExpertiseUpdater` from :func:`updater_to_dict` data."""
    updater = ExpertiseUpdater(n_users=int(data["n_users"]), alpha=float(data["alpha"]))
    for key, numerator in data["numerators"].items():
        domain_id = int(key)
        numerator = np.asarray(numerator, dtype=float)
        denominator = np.asarray(data["denominators"][key], dtype=float)
        if numerator.shape != (updater.n_users,) or denominator.shape != (updater.n_users,):
            raise ValueError(f"domain {domain_id}: sums have the wrong length")
        updater.ensure_domain(domain_id)
        updater._numerators[domain_id] = numerator
        updater._denominators[domain_id] = denominator
    return updater


def clustering_to_dict(clustering: DynamicHierarchicalClustering) -> dict:
    """Snapshot a :class:`DynamicHierarchicalClustering` (fitted or not)."""
    data = {
        "gamma": clustering.gamma,
        "refresh_d_star": clustering._refresh_d_star,
        "metric": clustering._metric,
        "fitted": clustering.is_fitted,
    }
    if clustering.is_fitted:
        data.update(
            {
                "points": clustering._points.view().tolist(),
                "d_star": clustering._d_star,
                "domains": {str(d): members for d, members in clustering._domains.items()},
                "next_domain_id": clustering._next_domain_id,
            }
        )
    return data


def clustering_from_dict(data: dict) -> DynamicHierarchicalClustering:
    """Rebuild a :class:`DynamicHierarchicalClustering` snapshot."""
    clustering = DynamicHierarchicalClustering(
        gamma=float(data["gamma"]),
        refresh_d_star=bool(data["refresh_d_star"]),
        metric=data.get("metric", "euclidean"),
    )
    if not data.get("fitted", False):
        return clustering
    points = np.asarray(data["points"], dtype=float)
    clustering._points.append(points)
    base = clustering._distances(points, points)
    np.fill_diagonal(base, 0.0)
    clustering._cache.initialise(base)
    clustering._d_star = float(data["d_star"])
    domains = {int(d): [int(i) for i in members] for d, members in data["domains"].items()}
    covered = sorted(index for members in domains.values() for index in members)
    if covered != list(range(points.shape[0])):
        raise ValueError("domain membership does not partition the stored points")
    clustering._domains = domains
    clustering._next_domain_id = int(data["next_domain_id"])
    return clustering


def system_state_to_dict(system: ETA2System) -> dict:
    """Snapshot an :class:`ETA2System`'s learned state as JSON-compatible data.

    Captures the expertise history, the clustering state, the warm-up flag
    and the iteration log.  Allocator settings and the embedding model are
    construction-time configuration and must be supplied again on restore.
    """
    state = {
        "format_version": _FORMAT_VERSION,
        "warmed_up": system.is_warmed_up,
        "iteration_log": list(system.iteration_log),
        "updater": updater_to_dict(system._updater),
        "clustering": clustering_to_dict(system._clustering),
    }
    # Optional keys keep the format at version 1: old readers ignore them,
    # old files simply lack them.
    if system.reputation is not None:
        state["reputation"] = system.reputation.state_dict()
    return state


def apply_system_state(system: ETA2System, state: dict) -> ETA2System:
    """Restore a :func:`system_state_to_dict` snapshot into ``system``.

    ``system`` must be freshly constructed with the same ``n_users``; its
    gamma/alpha construction parameters are overridden by the stored values.
    Returns ``system`` for chaining.
    """
    if not isinstance(state, dict):
        raise ValueError("system state must be a JSON object")
    version = state.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported state format version: {version!r}")
    try:
        updater = updater_from_dict(state["updater"])
        clustering = clustering_from_dict(state["clustering"])
        warmed_up = bool(state["warmed_up"])
        iteration_log = [int(i) for i in state["iteration_log"]]
    except KeyError as missing:
        raise ValueError(f"system state is missing the {missing} field") from None
    if updater.n_users != system.n_users:
        raise ValueError(
            f"state has {updater.n_users} users but the system was built for {system.n_users}"
        )
    system._updater = updater
    system._clustering = clustering
    system._warmed_up = warmed_up
    system.iteration_log = iteration_log
    reputation_state = state.get("reputation")
    if reputation_state is not None:
        from repro.reliability.reputation import ReputationTracker

        tracker = ReputationTracker.load_state(reputation_state)
        if tracker.n_users != system.n_users:
            raise ValueError(
                f"reputation state has {tracker.n_users} users but the system "
                f"was built for {system.n_users}"
            )
        system.reputation = tracker
    return system


def save_system_state(system: ETA2System, path: "str | Path") -> None:
    """Write an :class:`ETA2System`'s learned state to ``path`` (JSON).

    The write is atomic (:func:`atomic_write_text`): a crash mid-write
    leaves any previous state file intact instead of a corrupt one.
    """
    atomic_write_text(path, json.dumps(system_state_to_dict(system)))


def load_system_state(system: ETA2System, path: "str | Path") -> ETA2System:
    """Restore state saved by :func:`save_system_state` into ``system``.

    Truncated or otherwise corrupt files raise a :class:`ValueError` with a
    clear message rather than a raw JSON traceback.
    """
    path = Path(path)
    try:
        state = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(
            f"state file {path} is corrupt (truncated or invalid JSON): {error.msg}"
        ) from None
    return apply_system_state(system, state)


def state_fingerprint(system: ETA2System) -> str:
    """SHA-256 over the canonical JSON of the system's learned state.

    Two systems have equal fingerprints iff their serialised state is
    byte-identical — the equality contract the crash-recovery drills
    assert (an interrupted-and-resumed run must land on the same
    fingerprint as an uninterrupted one).
    """
    from repro.observability.tracer import canonical_json

    return hashlib.sha256(
        canonical_json(system_state_to_dict(system)).encode("utf-8")
    ).hexdigest()
