"""Dynamic update of user expertise across time steps (Section 4.2).

Eq. 6's expertise estimate is a ratio of two sums; the updater keeps both
running sums per (user, domain)::

    N(u_i^k)  — the (decayed) count of observations user i made in domain k
    D(u_i^k)  — the (decayed) sum of normalised squared errors there

When a new time step's tasks are finished (Eqs. 7-8)::

    N^{T+t} = alpha * N^T + sum_j I(d_j = k) w_ij
    D^{T+t} = alpha * D^T + sum_j I(d_j = k) w_ij (x_ij - mu_j)^2 / sigma_j^2

and expertise is refreshed as ``u = sqrt(N / D)`` (Eq. 9).  Because the new
tasks' ``mu_j`` and ``sigma_j`` are unknown a priori, they are estimated from
the *current* expertise (Eq. 5), which changes the expertise, which changes
the estimates — so the same alternating iteration runs until the truth
estimates converge.  Domain merges add the absorbed domain's sums into the
surviving domain, exactly the "recalculated according to Eq. 6 and Eq. 9"
step the paper describes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.expertise import DEFAULT_EXPERTISE, ExpertiseMatrix, expertise_from_sums
from repro.core.robust import RobustConfig, weighted_median_truths
from repro.core.truth import (
    SIGMA_FLOOR,
    TruthAnalysisResult,
    update_truths_for_expertise,
)
from repro.truthdiscovery.base import ObservationMatrix

__all__ = ["ExpertiseUpdater", "IncorporateResult"]

_LOG = logging.getLogger(__name__)

RELATIVE_TOLERANCE = 0.05
ABSOLUTE_TOLERANCE = 1e-3


@dataclass(frozen=True)
class IncorporateResult:
    """Truths/sigmas of one time step's new tasks plus convergence info.

    ``expertise`` maps each involved domain id to the post-update per-user
    expertise column, so callers (e.g. the min-cost quality check) can read
    the refreshed values without re-deriving them from the updater.
    """

    truths: np.ndarray
    sigmas: np.ndarray
    iterations: int
    converged: bool
    expertise: dict
    #: Largest per-task relative truth change at the last inner iteration
    #: (NaN when only one iteration ran).
    final_delta: float = float("nan")
    #: True when the weighted-median fallback replaced a diverged iterate.
    used_fallback: bool = False


class ExpertiseUpdater:
    """Running ``N``/``D`` sums per (user, domain) with decay ``alpha``."""

    def __init__(self, n_users: int, alpha: float = 0.5):
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        self._n_users = int(n_users)
        self._alpha = float(alpha)
        self._numerators: dict = {}
        self._denominators: dict = {}

    @property
    def n_users(self) -> int:
        return self._n_users

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def domain_ids(self) -> list:
        return sorted(self._numerators)

    def ensure_domain(self, domain_id: int) -> None:
        """Register ``domain_id`` with empty history (no-op if present)."""
        if domain_id not in self._numerators:
            self._numerators[domain_id] = np.zeros(self._n_users, dtype=float)
            self._denominators[domain_id] = np.zeros(self._n_users, dtype=float)

    def merge_domains(self, kept: int, deleted: int) -> None:
        """Absorb domain ``deleted`` into ``kept`` (Section 4.2, case two)."""
        if kept == deleted:
            raise ValueError("cannot merge a domain with itself")
        self.ensure_domain(kept)
        if deleted in self._numerators:
            self._numerators[kept] += self._numerators.pop(deleted)
            self._denominators[kept] += self._denominators.pop(deleted)

    def expertise_column(self, domain_id: int) -> np.ndarray:
        """Current ``u_i^k`` for one domain (Eq. 9), defaults where unseen."""
        numerator = self._numerators.get(domain_id)
        if numerator is None:
            return np.full(self._n_users, DEFAULT_EXPERTISE)
        return expertise_from_sums(numerator, self._denominators[domain_id])

    def decayed_base(self, domain_ids) -> "tuple[dict, dict]":
        """Eqs. 7-8 decayed time-``T`` base sums for one update (pure).

        The returned arrays are fresh products, never views of the
        running sums — callers may accumulate into them freely.  Domains
        must already be registered (see :meth:`ensure_domain`).
        """
        base_n = {d: self._alpha * self._numerators[d] for d in domain_ids}
        base_d = {d: self._alpha * self._denominators[d] for d in domain_ids}
        return base_n, base_d

    def commit_sums(self, new_n: dict, new_d: dict) -> None:
        """Install post-update running sums (the commit step of
        :meth:`incorporate`, also used by the domain-sharded engine in
        :mod:`repro.core.parallel`)."""
        for domain_id in new_n:
            self._numerators[domain_id] = new_n[domain_id]
            self._denominators[domain_id] = new_d[domain_id]

    def expertise_matrix(self) -> ExpertiseMatrix:
        """Snapshot of all domains as an :class:`ExpertiseMatrix`."""
        matrix = ExpertiseMatrix(self._n_users)
        for domain_id in self.domain_ids:
            matrix.add_domain(domain_id)
            matrix.set_column(domain_id, self.expertise_column(domain_id))
        return matrix

    def seed_from_batch(
        self,
        observations: ObservationMatrix,
        task_domains: np.ndarray,
        result: TruthAnalysisResult,
    ) -> None:
        """Initialise the running sums from a warm-up batch MLE result.

        The warm-up contributes undecayed history: its counts and normalised
        errors become the initial ``N``/``D``.
        """
        fresh_n, fresh_d = self._batch_sums(observations, task_domains, result.truths, result.sigmas)
        for domain_id in fresh_n:
            self.ensure_domain(domain_id)
            self._numerators[domain_id] += fresh_n[domain_id]
            self._denominators[domain_id] += fresh_d[domain_id]

    def incorporate(
        self,
        observations: ObservationMatrix,
        task_domains: np.ndarray,
        max_iterations: int = 100,
        commit: bool = True,
        robust: "RobustConfig | None" = None,
        tracer=None,
    ) -> IncorporateResult:
        """Fold one time step's new observations into the expertise state.

        Runs the Section 4.2 alternating iteration: estimate the new tasks'
        truths and base numbers from the current expertise (Eq. 5), refresh
        the decayed sums (Eqs. 7-8) and the expertise (Eq. 9), and repeat
        until the truth estimates converge.  The decay is applied once per
        call (per time step), not once per inner iteration.

        With ``commit=False`` the running sums are left untouched — a
        *preview* used by the min-cost allocator, which re-estimates after
        every recruiting round but must only commit the day's final data.

        ``robust`` enables the Huber/trimmed Eq. 5 reweighting, iteration
        damping, and weighted-median fallback (see
        :class:`~repro.core.robust.RobustConfig`); the Eq. 7-8 sums stay
        unweighted so misbehaving users keep earning low expertise.

        ``tracer`` (an enabled :class:`~repro.observability.RunTracer`)
        receives per-iteration ``mle.iteration`` deltas and the
        convergence verdict; committed previews only — the allocator's
        ``commit=False`` probes pass no tracer, keeping traces about the
        day's actual update.
        """
        task_domains = np.asarray(task_domains)
        if task_domains.shape != (observations.n_tasks,):
            raise ValueError("task_domains must have one label per task")
        if observations.n_users != self._n_users:
            raise ValueError("observation matrix has the wrong number of users")

        distinct = sorted(set(task_domains.tolist()))
        for domain_id in distinct:
            self.ensure_domain(domain_id)

        # Snapshots at time T; the decayed base stays fixed across iterations.
        base_n, base_d = self.decayed_base(distinct)

        damping = 1.0 if robust is None else robust.damping
        traced = tracer is not None and tracer.enabled

        expertise = {d: self.expertise_column(d) for d in distinct}
        truths = np.full(observations.n_tasks, np.nan)
        sigmas = np.full(observations.n_tasks, np.nan)
        converged = False
        final_delta = float("nan")
        iterations = 0
        new_n: dict = {}
        new_d: dict = {}
        for iterations in range(1, max_iterations + 1):
            task_expertise = np.vstack([expertise[d] for d in task_domains.tolist()]).T
            new_truths, sigmas = update_truths_for_expertise(
                observations, task_expertise, robust=robust
            )
            if damping < 1.0 and iterations > 1:
                both = ~(np.isnan(new_truths) | np.isnan(truths))
                new_truths = np.where(
                    both, damping * new_truths + (1.0 - damping) * truths, new_truths
                )
            fresh_n, fresh_d = self._batch_sums(observations, task_domains, new_truths, sigmas)
            new_n = {d: base_n[d] + fresh_n.get(d, 0.0) for d in distinct}
            new_d = {d: base_d[d] + fresh_d.get(d, 0.0) for d in distinct}
            expertise = {
                d: self._column_from_sums(new_n[d], new_d[d]) for d in distinct
            }
            if iterations > 1:
                final_delta = self._truth_delta(new_truths, truths)
                if traced:
                    tracer.emit("mle.iteration", iteration=iterations, delta=final_delta)
                if self._truths_converged(new_truths, truths):
                    truths = new_truths
                    converged = True
                    break
            elif traced:
                tracer.emit("mle.iteration", iteration=iterations, delta=None)
            truths = new_truths

        if traced and converged:
            tracer.emit("mle.converged", iterations=iterations, final_delta=final_delta)

        used_fallback = False
        if robust is not None and robust.fallback and not converged:
            observed = observations.mask.any(axis=0)
            diverged = (
                bool(np.any(~np.isfinite(truths[observed])))
                or not np.isfinite(final_delta)
                or final_delta > robust.fallback_delta
            )
            if diverged:
                truths, sigmas = self._fallback_truths(observations, task_domains, expertise)
                fresh_n, fresh_d = self._batch_sums(observations, task_domains, truths, sigmas)
                new_n = {d: base_n[d] + fresh_n.get(d, 0.0) for d in distinct}
                new_d = {d: base_d[d] + fresh_d.get(d, 0.0) for d in distinct}
                expertise = {
                    d: self._column_from_sums(new_n[d], new_d[d]) for d in distinct
                }
                used_fallback = True
                if traced:
                    tracer.emit(
                        "mle.fallback",
                        final_delta=final_delta,
                        fallback_delta=robust.fallback_delta,
                        n_tasks=observations.n_tasks,
                    )

        if not converged and commit:
            if traced:
                tracer.emit(
                    "mle.non_convergence",
                    iterations=iterations,
                    final_delta=final_delta,
                    n_tasks=observations.n_tasks,
                    n_observations=observations.observation_count,
                )
            _LOG.warning(
                "expertise update did not converge within %d iterations "
                "(final relative change %.4g, %d tasks, %d observations); "
                "committing the %s",
                max_iterations,
                final_delta,
                observations.n_tasks,
                observations.observation_count,
                "weighted-median fallback" if used_fallback else "last iterate",
            )
        if commit:
            self.commit_sums(new_n, new_d)
        return IncorporateResult(
            truths=truths,
            sigmas=sigmas,
            iterations=iterations,
            converged=converged,
            expertise={d: expertise[d].copy() for d in distinct},
            final_delta=final_delta,
            used_fallback=used_fallback,
        )

    @staticmethod
    def _column_from_sums(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
        return expertise_from_sums(numerator, denominator)

    def _batch_sums(
        self,
        observations: ObservationMatrix,
        task_domains: np.ndarray,
        truths: np.ndarray,
        sigmas: np.ndarray,
    ) -> "tuple[dict, dict]":
        """Per-domain observation counts and normalised squared error sums."""
        mask = observations.mask
        safe_truths = np.where(np.isnan(truths), 0.0, truths)
        normalised_sq = np.where(mask, ((observations.values - safe_truths) / sigmas) ** 2, 0.0)
        fresh_n: dict = {}
        fresh_d: dict = {}
        for domain_id in sorted(set(np.asarray(task_domains).tolist())):
            tasks = np.flatnonzero(np.asarray(task_domains) == domain_id)
            fresh_n[domain_id] = mask[:, tasks].sum(axis=1).astype(float)
            fresh_d[domain_id] = normalised_sq[:, tasks].sum(axis=1)
        return fresh_n, fresh_d

    def _fallback_truths(
        self,
        observations: ObservationMatrix,
        task_domains: np.ndarray,
        expertise: dict,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Guaranteed-finite weighted-median truths for a diverged update."""
        task_expertise = np.vstack(
            [expertise[d] for d in np.asarray(task_domains).tolist()]
        ).T
        rows, cols = np.nonzero(observations.mask)
        return weighted_median_truths(
            rows,
            cols,
            observations.values[rows, cols],
            task_expertise[rows, cols],
            observations.n_tasks,
            SIGMA_FLOOR,
        )

    @staticmethod
    def _truth_delta(new: np.ndarray, old: np.ndarray) -> float:
        """Largest per-task relative change (scale floored for near-zero)."""
        both = ~(np.isnan(new) | np.isnan(old))
        if not np.any(both):
            return 0.0
        delta = np.abs(new[both] - old[both])
        scale = np.maximum(np.abs(old[both]), ABSOLUTE_TOLERANCE / RELATIVE_TOLERANCE)
        return float(np.max(delta / scale))

    @staticmethod
    def _truths_converged(new: np.ndarray, old: np.ndarray) -> bool:
        both = ~(np.isnan(new) | np.isnan(old))
        if not np.any(both):
            return True
        delta = np.abs(new[both] - old[both])
        scale = np.abs(old[both])
        relative_ok = delta <= RELATIVE_TOLERANCE * np.maximum(scale, 1e-12)
        absolute_ok = delta <= ABSOLUTE_TOLERANCE
        return bool(np.all(relative_ok | absolute_ok))
