"""The ETA2 closed loop (Figure 1) as a reusable system object.

:class:`ETA2System` glues the three modules together exactly as the paper's
overview describes: a warm-up step with random allocation (no expertise is
known yet), then a repetitive daily process — identify the new tasks'
expertise domains, allocate with the expertise-aware allocator, collect
data, and run expertise-aware truth analysis to update user expertise.

The system is environment-agnostic: data collection happens through an
``observe(pairs) -> values`` callback, so the same object runs against the
simulation world, a recorded dataset, or (in principle) live users.

Two allocation modes mirror the paper's two problem formulations:

- ``allocator="max-quality"`` — ETA2 proper (Algorithm 1 + extra pass),
- ``allocator="min-cost"``   — ETA2-mc (Algorithm 2), which interleaves
  recruiting rounds with data collection inside a single :meth:`step`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.clustering.dynamic import DynamicHierarchicalClustering
from repro.core.allocation.base import DEFAULT_EPSILON, AllocationProblem, Assignment
from repro.core.allocation.baselines import RandomAllocator
from repro.core.allocation.max_quality import MaxQualityAllocator
from repro.core.allocation.min_cost import MinCostAllocator
from repro.core.expertise import ExpertiseMatrix
from repro.core.robust import RobustConfig
from repro.core.truth import estimate_truth
from repro.core.update import ExpertiseUpdater
from repro.observability.tracer import NULL_TRACER
from repro.perf.timers import PHASES, PhaseTimer, merge_timings
from repro.semantics.distance import semantics_for_descriptions
from repro.semantics.embeddings.base import EmbeddingModel
from repro.semantics.embeddings.cooccurrence import PPMISVDEmbedding
from repro.semantics.embeddings.corpus import generate_topical_corpus
from repro.truthdiscovery.base import ObservationMatrix

__all__ = ["IncomingTask", "StepResult", "ETA2System", "default_embedding"]

_LOG = logging.getLogger(__name__)


@dataclass(frozen=True)
class IncomingTask:
    """A newly created task as handed to the server.

    Exactly one of ``description`` (text datasets — the system clusters it)
    or ``domain`` (pre-known expertise domain, Section 6.1.3 style) must be
    provided.
    """

    processing_time: float
    cost: float = 1.0
    description: "str | None" = None
    domain: "int | None" = None

    def __post_init__(self):
        if self.processing_time <= 0:
            raise ValueError("processing_time must be positive")
        if self.cost < 0:
            raise ValueError("cost must be non-negative")
        if (self.description is None) == (self.domain is None):
            raise ValueError("provide exactly one of description or domain")


@dataclass(frozen=True)
class StepResult:
    """Outcome of one warm-up or daily step."""

    assignment: Assignment
    observations: ObservationMatrix
    truths: np.ndarray
    sigmas: np.ndarray
    task_domains: np.ndarray
    merges: tuple
    new_domains: tuple
    mle_iterations: int
    allocation_cost: float
    #: Per-task expertise ``u_{i, d_j}`` used for this step's allocation and
    #: confidence intervals (post-update values).
    task_expertise: "np.ndarray | None" = None
    #: Whether this step's truth analysis converged within its iteration
    #: budget.  False marks a degraded day: the estimates are the last
    #: iterate, not a fixed point (also logged as a warning).
    converged: bool = True
    #: Wall-clock seconds per pipeline phase (``identify``/``allocate``/
    #: ``collect``/``truth``), recorded by :class:`~repro.perf.timers.PhaseTimer`.
    timings: "dict | None" = None
    #: Users the allocators excluded this step because the reputation
    #: tracker had them quarantined (empty without a tracker).
    excluded_users: tuple = ()
    #: The :class:`~repro.reliability.reputation.ReputationSummary` of this
    #: step's scoring pass (None without a tracker).
    reputation: "object | None" = None
    #: Merged :class:`~repro.reliability.guards.GuardReport` of this step's
    #: phase-boundary checks (None without guards enabled).
    guard_report: "object | None" = None

    @property
    def degraded(self) -> bool:
        """True when this step's estimates should be treated with suspicion."""
        return not self.converged

    @property
    def pair_count(self) -> int:
        return self.assignment.pair_count

    def confidence_intervals(self, confidence: float = 0.95) -> list:
        """Eq. 24 confidence intervals for every task's truth estimate.

        Returns one :class:`~repro.stats.confidence.ConfidenceInterval` per
        task (infinite width for tasks with no informative observation).
        Requires ``task_expertise`` (set by :class:`ETA2System`).
        """
        from repro.stats.confidence import mle_truth_confidence_interval

        if self.task_expertise is None:
            raise ValueError("this result carries no per-task expertise")
        intervals = []
        for task in range(self.observations.n_tasks):
            users = self.observations.observations_for_task(task)[0]
            sigma = float(self.sigmas[task])
            if users.size == 0 or not np.isfinite(sigma) or sigma <= 0:
                intervals.append(
                    mle_truth_confidence_interval(
                        float("nan"), [], sigma=1.0, confidence=confidence
                    )
                )
                continue
            intervals.append(
                mle_truth_confidence_interval(
                    float(self.truths[task]),
                    self.task_expertise[users, task],
                    sigma=sigma,
                    confidence=confidence,
                )
            )
        return intervals


def default_embedding(dim: int = 32, seed: int = 0) -> EmbeddingModel:
    """The library's default embedding backend.

    A PPMI+SVD model trained on the bundled topical corpus — deterministic,
    fast, and sufficient for same-domain words to cluster (DESIGN.md's
    substitution for the paper's Wikipedia-trained skip-gram vectors).
    """
    corpus = generate_topical_corpus(seed=seed)
    return PPMISVDEmbedding(corpus.sentences, dim=dim)


class ETA2System:
    """Expertise-aware truth analysis and task allocation, end to end."""

    def __init__(
        self,
        n_users: int,
        capacities: Sequence[float],
        gamma: float = 0.5,
        alpha: float = 0.5,
        epsilon: float = DEFAULT_EPSILON,
        allocator: str = "max-quality",
        embedding: "EmbeddingModel | None" = None,
        min_cost_round_budget: float = 100.0,
        min_cost_error_limit: float = 0.5,
        min_cost_confidence: float = 0.95,
        extra_greedy_pass: bool = True,
        exploration_rate: float = 0.0,
        clustering_metric: str = "euclidean",
        robust: "RobustConfig | None" = None,
        seed=None,
        parallel_domains: int = 0,
    ):
        capacities = np.asarray(capacities, dtype=float)
        if capacities.shape != (n_users,):
            raise ValueError("capacities must have one entry per user")
        if allocator not in ("max-quality", "min-cost"):
            raise ValueError("allocator must be 'max-quality' or 'min-cost'")
        if not 0.0 <= exploration_rate <= 1.0:
            raise ValueError("exploration_rate must lie in [0, 1]")
        self._n_users = int(n_users)
        self._capacities = capacities
        self._epsilon = float(epsilon)
        self._allocator_kind = allocator
        self._embedding = embedding
        self._clustering = DynamicHierarchicalClustering(gamma=gamma, metric=clustering_metric)
        self._updater = ExpertiseUpdater(n_users, alpha=alpha)
        if exploration_rate > 0.0:
            from repro.core.allocation.exploring import ExploringMaxQualityAllocator

            self._max_quality = ExploringMaxQualityAllocator(
                exploration_rate=exploration_rate,
                extra_pass=extra_greedy_pass,
                seed=seed,
            )
        else:
            self._max_quality = MaxQualityAllocator(extra_pass=extra_greedy_pass)
        self._min_cost = MinCostAllocator(
            round_budget=min_cost_round_budget,
            error_limit=min_cost_error_limit,
            confidence=min_cost_confidence,
        )
        self._random = RandomAllocator(seed=seed)
        self._warmed_up = False
        #: Per-step MLE iteration counts (consumed by the Fig. 12 experiment).
        self.iteration_log: list = []
        #: Cumulative wall-clock seconds per pipeline phase across all steps.
        self.phase_totals: dict = {name: 0.0 for name in PHASES}
        # Reliability layer (all optional; see configure_resilience /
        # enable_checkpointing / enable_reputation / enable_guards).
        self._resilience: "dict | None" = None
        self.observer_report = None
        self.sanitizer = None
        self._checkpoint = None
        if robust is not None and not isinstance(robust, RobustConfig):
            raise TypeError("robust must be a RobustConfig or None")
        self._robust = robust
        if parallel_domains < 0:
            raise ValueError("parallel_domains must be non-negative")
        #: Domain-sharded truth analysis (None = serial).  The engine is
        #: bit-identical to the serial path, so this is purely a
        #: performance knob; robust configs delegate back to serial.
        self._parallel = None
        if parallel_domains >= 1:
            from repro.core.parallel import ParallelConfig, ParallelTruthEngine

            self._parallel = ParallelTruthEngine(
                ParallelConfig(n_shards=int(parallel_domains))
            )
        #: Cross-day reputation tracker (None until enable_reputation()).
        self.reputation = None
        #: Phase-boundary invariant guard (None until enable_guards()).
        self.guard = None
        #: Completed warm-up/daily steps (drives checkpoint numbering).
        self.completed_steps = 0
        # Telemetry (see enable_telemetry): the no-op tracer costs one
        # attribute check per instrumentation point, so it stays attached.
        self.tracer = NULL_TRACER
        #: Optional :class:`~repro.observability.MetricsRegistry`.
        self.metrics = None
        #: Optional run manifest (repro.observability.run_manifest).
        self.run_manifest = None

    def _estimate_truth_phase(self, observations, domains):
        """Batch MLE (Section 4.1), sharded when parallel_domains is set."""
        tracer = self.tracer if self.tracer.enabled else None
        if self._parallel is not None:
            return self._parallel.estimate_truth(
                observations,
                domains,
                robust=self._robust,
                tracer=tracer,
                metrics=self.metrics,
            )
        return estimate_truth(observations, domains, robust=self._robust, tracer=tracer)

    def _incorporate_phase(self, observations, domains, commit=True, traced=True):
        """Dynamic update (Section 4.2), sharded when parallel_domains is set."""
        tracer = self.tracer if (traced and self.tracer.enabled) else None
        if self._parallel is not None:
            return self._parallel.incorporate(
                self._updater,
                observations,
                domains,
                commit=commit,
                robust=self._robust,
                tracer=tracer,
                metrics=self.metrics,
            )
        return self._updater.incorporate(
            observations, domains, commit=commit, robust=self._robust, tracer=tracer
        )

    def close(self) -> None:
        """Release runtime resources (the parallel engine's worker pool)."""
        if self._parallel is not None:
            self._parallel.close()

    @property
    def n_users(self) -> int:
        return self._n_users

    @property
    def is_warmed_up(self) -> bool:
        return self._warmed_up

    def expertise_matrix(self) -> ExpertiseMatrix:
        """Current per-user per-domain expertise estimates."""
        return self._updater.expertise_matrix()

    # ------------------------------------------------------------------ #
    # Reliability layer (resilient collection + crash-safe checkpointing)
    # ------------------------------------------------------------------ #

    def configure_resilience(
        self,
        retry=None,
        breaker=None,
        call_timeout: "float | None" = None,
        sanitizer=None,
        salvage: bool = True,
        clock=None,
        sleep=None,
    ) -> None:
        """Harden data collection: wrap every ``observe()`` callback.

        From now on, warm-up and daily steps route collection through a
        :class:`~repro.reliability.observer.ResilientObserver` (retries with
        backoff, circuit breaking, per-call timeouts, per-pair salvage) and
        optionally an
        :class:`~repro.reliability.sanitize.ObservationSanitizer`.  The
        breaker, the report, and the sanitizer's counters persist across
        steps: inspect ``system.observer_report`` / ``system.sanitizer``.
        """
        import time

        from repro.reliability.observer import CircuitBreaker, ObserverReport

        clock = clock if clock is not None else time.monotonic
        self._resilience = {
            "retry": retry,
            "breaker": breaker if breaker is not None else CircuitBreaker(clock=clock),
            "call_timeout": call_timeout,
            "salvage": salvage,
            "clock": clock,
            "sleep": sleep if sleep is not None else time.sleep,
        }
        self.observer_report = ObserverReport()
        self.sanitizer = sanitizer

    def _wrap_observe(self, observe: Callable) -> Callable:
        if self._resilience is None:
            return observe
        from repro.reliability.observer import ResilientObserver

        return ResilientObserver(
            observe,
            retry=self._resilience["retry"],
            breaker=self._resilience["breaker"],
            call_timeout=self._resilience["call_timeout"],
            sanitizer=self.sanitizer,
            salvage=self._resilience["salvage"],
            clock=self._resilience["clock"],
            sleep=self._resilience["sleep"],
            report=self.observer_report,
        )

    def enable_reputation(self, config=None):
        """Track cross-day worker reputation and quarantine misbehaviour.

        From now on, every completed step folds its standardized residuals
        into a :class:`~repro.reliability.reputation.ReputationTracker`
        (created here; defaults to the updater's decay ``alpha``), and every
        allocation excludes the currently quarantined users.  Returns the
        tracker (also kept on ``system.reputation``).
        """
        from repro.reliability.reputation import ReputationConfig, ReputationTracker

        if config is None:
            config = ReputationConfig(alpha=self._updater.alpha)
        self.reputation = ReputationTracker(self._n_users, config)
        return self.reputation

    def enable_guards(self, policy: str = "warn", config=None):
        """Check phase-boundary invariants on every step.

        ``policy`` is ``"warn"``, ``"raise"`` or ``"repair"`` (ignored when
        an explicit :class:`~repro.reliability.guards.GuardConfig` is
        given).  Returns the guard (also kept on ``system.guard``); each
        step's merged report lands on ``StepResult.guard_report``.
        """
        from repro.reliability.guards import GuardConfig, InvariantGuard

        self.guard = InvariantGuard(
            config if config is not None else GuardConfig(policy=policy),
            tracer=self.tracer,
        )
        return self.guard

    def enable_telemetry(self, tracer=None, metrics=None, manifest=None):
        """Attach structured tracing and/or a metrics registry to the loop.

        ``tracer`` is a :class:`~repro.observability.RunTracer` (None keeps
        the no-op tracer), ``metrics`` a
        :class:`~repro.observability.MetricsRegistry`, ``manifest`` the run
        manifest stamped onto checkpoints.  Already-enabled subsystems
        (guards, checkpointing) are re-pointed at the new telemetry, and
        subsystems enabled later pick it up automatically — call order
        does not matter.
        """
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics
        if manifest is not None:
            self.run_manifest = manifest
        if self.guard is not None:
            self.guard.tracer = self.tracer
        if self._checkpoint is not None:
            self._checkpoint.tracer = self.tracer
            if self._checkpoint.manifest is None:
                self._checkpoint.manifest = self.run_manifest
        return self

    def _eligibility(self) -> "tuple[np.ndarray | None, tuple]":
        """Allocation eligibility mask and the users it excludes."""
        if self.reputation is None:
            return None, ()
        eligible = self.reputation.eligible
        if np.all(eligible):
            return None, ()
        if not np.any(eligible):
            # The loop must keep collecting data no matter what the tracker
            # thinks; an all-quarantined roster would otherwise deadlock it.
            _LOG.warning(
                "every user is quarantined; suspending eligibility filtering for this step"
            )
            return None, ()
        return eligible, tuple(int(u) for u in np.flatnonzero(~eligible))

    def _check_partition(self, domains: np.ndarray, new_domains) -> "object | None":
        if self.guard is None:
            return None
        if self._clustering.is_fitted:
            # Every label the clusterer emitted must be either already
            # tracked by the updater or declared new this very step —
            # anything else means the merge bookkeeping between the two
            # modules has diverged.
            known = set(self._updater.domain_ids) | set(new_domains)
        else:
            known = set(domains.tolist())
        return self.guard.check_partition(domains, known)

    def _record_reputation(self, observations, truths, sigmas, task_expertise):
        if self.reputation is None:
            return None
        summary = self.reputation.record_day(
            observations.mask, observations.values, truths, sigmas, task_expertise
        )
        if self.tracer.enabled and summary is not None:
            if summary.newly_quarantined:
                self.tracer.emit(
                    "reputation.quarantine",
                    day=summary.day,
                    users=list(summary.newly_quarantined),
                )
            if summary.newly_probation:
                self.tracer.emit(
                    "reputation.probation",
                    day=summary.day,
                    users=list(summary.newly_probation),
                )
            if summary.reinstated:
                self.tracer.emit(
                    "reputation.reinstate",
                    day=summary.day,
                    users=list(summary.reinstated),
                )
        return summary

    def enable_checkpointing(self, directory, keep: int = 3):
        """Checkpoint automatically after every completed warm-up/step.

        Returns the :class:`~repro.reliability.checkpoint.CheckpointManager`
        (also kept on the system) so callers can inspect or restore.
        """
        from repro.reliability.checkpoint import CheckpointManager

        self._checkpoint = CheckpointManager(
            directory, keep=keep, manifest=self.run_manifest, tracer=self.tracer
        )
        return self._checkpoint

    @property
    def checkpoint_manager(self):
        return self._checkpoint

    def restore_latest(self) -> "int | None":
        """Restore the newest valid checkpoint (requires checkpointing).

        Returns the restored step number, or None when no valid checkpoint
        exists; in that case the system keeps its current (cold) state.
        """
        if self._checkpoint is None:
            raise RuntimeError("call enable_checkpointing() first")
        step = self._checkpoint.restore(self)
        if step is None:
            _LOG.warning(
                "no valid checkpoint found in %s; starting cold", self._checkpoint.directory
            )
        else:
            self.completed_steps = step
        return step

    @classmethod
    def resume(cls, directory, keep: int = 3, **system_kwargs) -> "ETA2System":
        """Build a system and recover it from the newest valid checkpoint.

        ``system_kwargs`` are the normal constructor arguments (state files
        deliberately exclude construction-time configuration).  Corrupt
        checkpoints are skipped newest-to-oldest; with no valid checkpoint
        at all the system starts cold (with a warning).
        """
        system = cls(**system_kwargs)
        system.enable_checkpointing(directory, keep=keep)
        system.restore_latest()
        return system

    def _after_step(self, result: StepResult, kind: str) -> StepResult:
        """End-of-step bookkeeping: convergence surfacing, telemetry,
        checkpointing."""
        merge_timings(self.phase_totals, result.timings)
        if not result.converged:
            _LOG.warning(
                "%s step %d produced non-converged truth estimates after %d iterations",
                kind,
                self.completed_steps + 1,
                result.mle_iterations,
            )
        self.completed_steps += 1
        if self.tracer.enabled:
            if result.excluded_users:
                self.tracer.emit(
                    "allocation.excluded", users=list(result.excluded_users)
                )
            self.tracer.emit(
                "step.end",
                step=self.completed_steps,
                kind=kind,
                converged=bool(result.converged),
                iterations=int(result.mle_iterations),
                pairs=int(result.pair_count),
                observations=int(result.observations.observation_count),
                cost=float(result.allocation_cost),
            )
        if self.metrics is not None:
            self._record_metrics(result, kind)
        if self._checkpoint is not None:
            path = self._checkpoint.save(
                self,
                self.completed_steps,
                metadata={
                    "kind": kind,
                    "converged": bool(result.converged),
                    "mle_iterations": int(result.mle_iterations),
                    "pair_count": int(result.pair_count),
                },
            )
            if self.metrics is not None:
                nbytes = path.stat().st_size
                self.metrics.counter(
                    "repro_checkpoint_bytes_total",
                    "Bytes written to checkpoint files.",
                ).inc(nbytes)
                self.metrics.gauge(
                    "repro_checkpoint_last_bytes",
                    "Size of the most recent checkpoint file.",
                ).set(nbytes)
        return result

    def _record_allocation_stats(self, stats) -> None:
        """Surface the lazy-greedy kernel's work counters (tracer + metrics).

        ``stats`` is a :class:`~repro.core.allocation.lazy_greedy.GreedyStats`
        merged across this step's greedy passes (None when the step ran no
        greedy, e.g. during warm-up's random allocation).
        """
        if stats is None:
            return
        if self.tracer.enabled:
            self.tracer.emit(
                "allocation.greedy",
                picks=int(stats.picks),
                pops=int(stats.pops),
                evaluations=int(stats.evaluations),
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_allocation_picks_total",
                "Pairs picked by the lazy-greedy allocation kernel.",
            ).inc(int(stats.picks))
            self.metrics.counter(
                "repro_allocation_reevaluations_total",
                "Stale heap entries re-evaluated by the lazy-greedy kernel.",
            ).inc(int(stats.evaluations))

    def _record_metrics(self, result: StepResult, kind: str) -> None:
        """Fold one completed step into the metrics registry."""
        metrics = self.metrics
        metrics.counter(
            "repro_steps_total", "Completed warm-up/daily steps."
        ).inc(1, kind=kind)
        metrics.counter(
            "repro_observations_total", "Observations collected across all steps."
        ).inc(int(result.observations.observation_count))
        metrics.counter(
            "repro_assigned_pairs_total", "User/task pairs assigned by the allocators."
        ).inc(int(result.pair_count))
        metrics.counter(
            "repro_allocation_cost_total", "Cumulative allocation cost (Problem 2)."
        ).inc(float(result.allocation_cost))
        metrics.histogram(
            "repro_mle_iterations",
            "Iterations the Eq. 5-6 MLE took to converge, per step.",
        ).observe(int(result.mle_iterations))
        if not result.converged:
            metrics.counter(
                "repro_mle_non_convergence_total",
                "Steps whose truth analysis exhausted its iteration budget.",
            ).inc()
        domains, counts = np.unique(result.task_domains, return_counts=True)
        tasks_per_domain = metrics.counter(
            "repro_tasks_total", "Tasks processed, by expertise domain."
        )
        for domain, count in zip(domains.tolist(), counts.tolist()):
            tasks_per_domain.inc(int(count), domain=str(domain))
        if result.excluded_users:
            metrics.counter(
                "repro_excluded_users_total",
                "User-steps excluded from allocation by quarantine.",
            ).inc(len(result.excluded_users))
        if result.guard_report is not None and not result.guard_report.ok:
            metrics.counter(
                "repro_guard_violations_total", "Invariant-guard violations."
            ).inc(int(result.guard_report.violation_count))
        if self._clustering.is_fitted:
            stats = self._clustering.cache_stats()
            metrics.gauge(
                "repro_distance_cache_hit_rate",
                "Fraction of distance-matrix entries served from the grow-only cache.",
            ).set(float(stats["hit_rate"]))
        metrics.gauge(
            "repro_domains", "Distinct expertise domains currently tracked."
        ).set(len(self._updater.domain_ids))

    # ------------------------------------------------------------------ #
    # Domain identification (Module 1)
    # ------------------------------------------------------------------ #

    def _embedding_model(self) -> EmbeddingModel:
        if self._embedding is None:
            self._embedding = default_embedding()
        return self._embedding

    def _identify_domains(self, tasks: Sequence[IncomingTask]) -> "tuple[np.ndarray, tuple, tuple]":
        """Domain ids for a batch of tasks, plus (merges, new_domains)."""
        with_text = [task.description is not None for task in tasks]
        if all(with_text):
            vectors = np.vstack(
                [
                    item.concatenated
                    for item in semantics_for_descriptions(
                        [task.description for task in tasks], self._embedding_model()
                    )
                ]
            )
            if self._clustering.is_fitted:
                result = self._clustering.add(vectors)
            else:
                result = self._clustering.fit(vectors)
            for merge in result.merges:
                self._updater.merge_domains(merge.kept, merge.deleted)
            if self.tracer.enabled:
                for domain in result.new_domains:
                    self.tracer.emit("clustering.new_domain", domain=int(domain))
                for merge in result.merges:
                    self.tracer.emit(
                        "clustering.merge",
                        kept=int(merge.kept),
                        deleted=int(merge.deleted),
                    )
            return result.added_labels, result.merges, result.new_domains
        if any(with_text):
            raise ValueError("a batch must be all-text or all-preknown-domain tasks")
        labels = np.array([task.domain for task in tasks], dtype=int)
        return labels, (), ()

    # ------------------------------------------------------------------ #
    # Warm-up (random allocation, batch MLE seed)
    # ------------------------------------------------------------------ #

    def warmup(self, tasks: Sequence[IncomingTask], observe: Callable) -> StepResult:
        """Run the warm-up period: random allocation, then batch MLE.

        ``observe(pairs)`` receives ``(user, local_task_index)`` pairs and
        must return one observed value per pair.
        """
        if self._warmed_up:
            raise RuntimeError("warm-up already done; use step()")
        if not tasks:
            raise ValueError("warm-up needs at least one task")
        observe = self._wrap_observe(observe)
        if self.tracer.enabled:
            self.tracer.emit(
                "step.start",
                step=self.completed_steps + 1,
                kind="warm-up",
                n_tasks=len(tasks),
            )
        timer = PhaseTimer(tracer=self.tracer)
        with timer.phase("identify"):
            domains, merges, new_domains = self._identify_domains(tasks)
        guard_reports = [self._check_partition(domains, new_domains)]

        with timer.phase("allocate"):
            eligible, excluded = self._eligibility()
            problem = self._problem(tasks, self._default_expertise_for(domains), eligible)
            assignment = self._random.allocate(problem)
        with timer.phase("collect"):
            observations = self._collect(assignment, observe)
        if observations.observation_count == 0:
            # Total collection outage: nothing to learn from.  Stay in the
            # warm-up regime (the next day retries warm-up) instead of
            # seeding expertise from nothing.
            return self._degraded_result(
                assignment, observations, domains, merges, new_domains, problem, "warm-up", timer,
                excluded=excluded,
            )

        with timer.phase("truth"):
            result = self._estimate_truth_phase(observations, domains)
            if self.guard is not None:
                truths, sigmas, truth_report = self.guard.check_truths(
                    result.truths, result.sigmas, observed=observations.mask.any(axis=0)
                )
                expertise, expertise_report = self.guard.check_expertise(result.expertise)
                guard_reports += [truth_report, expertise_report]
                if truth_report.repaired or expertise_report.repaired:
                    result = replace(result, truths=truths, sigmas=sigmas, expertise=expertise)
            self._updater.seed_from_batch(observations, domains, result)
        task_expertise = result.expertise_for_tasks(domains)
        summary = self._record_reputation(observations, result.truths, result.sigmas, task_expertise)
        self.iteration_log.append(result.iterations)
        self._warmed_up = True
        return self._after_step(
            StepResult(
                assignment=assignment,
                observations=observations,
                truths=result.truths,
                sigmas=result.sigmas,
                task_domains=domains,
                merges=merges,
                new_domains=new_domains,
                mle_iterations=result.iterations,
                allocation_cost=assignment.total_cost(problem.costs),
                task_expertise=task_expertise,
                converged=result.converged,
                timings=timer.timings(),
                excluded_users=excluded,
                reputation=summary,
                guard_report=self._merge_guard_reports(guard_reports),
            ),
            "warm-up",
        )

    # ------------------------------------------------------------------ #
    # Daily step (Modules 1 + 3 + 2)
    # ------------------------------------------------------------------ #

    def step(self, tasks: Sequence[IncomingTask], observe: Callable) -> StepResult:
        """One time step: identify domains, allocate, collect, analyse."""
        if not self._warmed_up:
            raise RuntimeError("run warmup() first")
        if not tasks:
            raise ValueError("step needs at least one task")
        observe = self._wrap_observe(observe)
        if self.tracer.enabled:
            self.tracer.emit(
                "step.start",
                step=self.completed_steps + 1,
                kind="daily",
                n_tasks=len(tasks),
            )
        timer = PhaseTimer(tracer=self.tracer)
        with timer.phase("identify"):
            domains, merges, new_domains = self._identify_domains(tasks)
        guard_reports = [self._check_partition(domains, new_domains)]
        with timer.phase("allocate"):
            expertise = self._expertise_for(domains)
            eligible, excluded = self._eligibility()
            problem = self._problem(tasks, expertise, eligible)

        if self._allocator_kind == "max-quality":
            with timer.phase("allocate"):
                assignment = self._max_quality.allocate(problem)
            self._record_allocation_stats(self._max_quality.last_stats)
            with timer.phase("collect"):
                observations = self._collect(assignment, observe)
        else:
            # Algorithm 2 interleaves recruiting with collection and truth
            # previews inside one call: time the nested callbacks directly
            # and credit the remainder of the span to allocation.
            start = timer.now()
            collected_before = timer.get("collect")
            truth_before = timer.get("truth")
            outcome = self._min_cost.run(
                problem,
                observe=timer.wrap("collect", observe),
                estimate=timer.wrap("truth", self._min_cost_estimator(domains)),
            )
            span = timer.now() - start
            nested = (timer.get("collect") - collected_before) + (timer.get("truth") - truth_before)
            timer.add("allocate", span - nested)
            self._record_allocation_stats(outcome.greedy_stats)
            assignment = outcome.assignment
            observations = outcome.observations
        if observations.observation_count == 0:
            # Total collection outage: skip the expertise update entirely —
            # applying the decay with no fresh data would erode the learned
            # state the outage already made harder to rebuild.
            return self._degraded_result(
                assignment, observations, domains, merges, new_domains, problem, "daily", timer,
                excluded=excluded,
            )
        with timer.phase("truth"):
            incorporate = self._incorporate_phase(observations, domains)

        self.iteration_log.append(incorporate.iterations)
        truths, sigmas = incorporate.truths, incorporate.sigmas
        task_expertise = np.vstack(
            [incorporate.expertise[d] for d in domains.tolist()]
        ).T
        if self.guard is not None:
            truths, sigmas, truth_report = self.guard.check_truths(
                truths, sigmas, observed=observations.mask.any(axis=0)
            )
            task_expertise, expertise_report = self.guard.check_expertise(task_expertise)
            guard_reports += [truth_report, expertise_report]
        summary = self._record_reputation(observations, truths, sigmas, task_expertise)
        return self._after_step(
            StepResult(
                assignment=assignment,
                observations=observations,
                truths=truths,
                sigmas=sigmas,
                task_domains=domains,
                merges=merges,
                new_domains=new_domains,
                mle_iterations=incorporate.iterations,
                allocation_cost=assignment.total_cost(problem.costs),
                task_expertise=task_expertise,
                converged=incorporate.converged,
                timings=timer.timings(),
                excluded_users=excluded,
                reputation=summary,
                guard_report=self._merge_guard_reports(guard_reports),
            ),
            "daily",
        )

    # ------------------------------------------------------------------ #
    # Streamed step (reports arrive from outside; no live allocation)
    # ------------------------------------------------------------------ #

    def step_from_batch(self, tasks: Sequence[IncomingTask], reports) -> StepResult:
        """One step driven by externally collected reports.

        The streaming service (:mod:`repro.serve`) replays observation
        batches from its write-ahead log instead of allocating and
        collecting live: ``reports`` is an iterable of ``(user,
        local_task_index, value)`` triples for *this step's* tasks.
        Duplicate pairs resolve last-writer-wins (replay order is the WAL
        order, so this is deterministic), non-finite values erase the pair
        — the same coercion :meth:`_collect` applies — and reports from
        quarantined users are dropped, mirroring the allocator-side
        exclusion of the live loop.  Runs as warm-up while the system is
        cold (batch MLE seed) and as a daily step afterwards, with the
        same degraded-day and bookkeeping semantics as the live entry
        points.
        """
        if not tasks:
            raise ValueError("step_from_batch needs at least one task")
        kind = "daily" if self._warmed_up else "warm-up"
        if self.tracer.enabled:
            self.tracer.emit(
                "step.start",
                step=self.completed_steps + 1,
                kind=kind,
                n_tasks=len(tasks),
            )
        timer = PhaseTimer(tracer=self.tracer)
        with timer.phase("identify"):
            domains, merges, new_domains = self._identify_domains(tasks)
        guard_reports = [self._check_partition(domains, new_domains)]
        with timer.phase("allocate"):
            eligible, excluded = self._eligibility()
            expertise = (
                self._expertise_for(domains)
                if self._warmed_up
                else self._default_expertise_for(domains)
            )
            problem = self._problem(tasks, expertise, eligible)
        with timer.phase("collect"):
            observations = self._observations_from_reports(reports, len(tasks), eligible)
            # The implied assignment is exactly the observed pairs: cost
            # accounting charges each task's cost per delivering user.
            assignment = Assignment(matrix=observations.mask.copy())
        if observations.observation_count == 0:
            return self._degraded_result(
                assignment, observations, domains, merges, new_domains, problem, kind, timer,
                excluded=excluded,
            )
        if not self._warmed_up:
            with timer.phase("truth"):
                result = self._estimate_truth_phase(observations, domains)
                if self.guard is not None:
                    truths, sigmas, truth_report = self.guard.check_truths(
                        result.truths, result.sigmas, observed=observations.mask.any(axis=0)
                    )
                    expertise_arr, expertise_report = self.guard.check_expertise(result.expertise)
                    guard_reports += [truth_report, expertise_report]
                    if truth_report.repaired or expertise_report.repaired:
                        result = replace(
                            result, truths=truths, sigmas=sigmas, expertise=expertise_arr
                        )
                self._updater.seed_from_batch(observations, domains, result)
            truths, sigmas = result.truths, result.sigmas
            task_expertise = result.expertise_for_tasks(domains)
            iterations, converged = result.iterations, result.converged
            self._warmed_up = True
        else:
            with timer.phase("truth"):
                incorporate = self._incorporate_phase(observations, domains)
            truths, sigmas = incorporate.truths, incorporate.sigmas
            task_expertise = np.vstack(
                [incorporate.expertise[d] for d in domains.tolist()]
            ).T
            if self.guard is not None:
                truths, sigmas, truth_report = self.guard.check_truths(
                    truths, sigmas, observed=observations.mask.any(axis=0)
                )
                task_expertise, expertise_report = self.guard.check_expertise(task_expertise)
                guard_reports += [truth_report, expertise_report]
            iterations, converged = incorporate.iterations, incorporate.converged
        summary = self._record_reputation(observations, truths, sigmas, task_expertise)
        self.iteration_log.append(iterations)
        return self._after_step(
            StepResult(
                assignment=assignment,
                observations=observations,
                truths=truths,
                sigmas=sigmas,
                task_domains=domains,
                merges=merges,
                new_domains=new_domains,
                mle_iterations=iterations,
                allocation_cost=assignment.total_cost(problem.costs),
                task_expertise=task_expertise,
                converged=converged,
                timings=timer.timings(),
                excluded_users=excluded,
                reputation=summary,
                guard_report=self._merge_guard_reports(guard_reports),
            ),
            kind,
        )

    def _observations_from_reports(self, reports, n_tasks: int, eligible) -> ObservationMatrix:
        """Fold ``(user, local_task, value)`` triples into an observation matrix.

        Later triples overwrite earlier ones for the same pair (including a
        non-finite value erasing an earlier finite one), so replaying the
        same ordered report stream always rebuilds the same matrix.
        """
        values = np.zeros((self._n_users, n_tasks), dtype=float)
        mask = np.zeros((self._n_users, n_tasks), dtype=bool)
        for user, task, value in reports:
            user, task = int(user), int(task)
            if not 0 <= user < self._n_users:
                raise ValueError(f"report names unknown user {user}")
            if not 0 <= task < n_tasks:
                raise ValueError(f"report names unknown local task {task}")
            if eligible is not None and not eligible[user]:
                continue
            value = float(value)
            if np.isfinite(value):
                values[user, task] = value
                mask[user, task] = True
            else:
                values[user, task] = 0.0
                mask[user, task] = False
        return ObservationMatrix(values=values, mask=mask)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _degraded_result(
        self,
        assignment,
        observations,
        domains,
        merges,
        new_domains,
        problem,
        kind: str,
        timer: "PhaseTimer | None" = None,
        excluded: tuple = (),
    ) -> StepResult:
        """The all-NaN outcome of a step whose collection failed entirely.

        No state is updated and no checkpoint is written (nothing was
        learned); the day is surfaced as non-converged so operators and the
        engine's metrics see a degraded day rather than a silent one.
        """
        from repro.core.truth import SIGMA_FLOOR

        _LOG.warning(
            "%s step collected zero observations for %d tasks; "
            "returning a degraded (all-NaN) result", kind, observations.n_tasks
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "step.degraded", kind=kind, n_tasks=int(observations.n_tasks)
            )
        self.iteration_log.append(0)
        timings = timer.timings() if timer is not None else None
        if timings is not None:
            merge_timings(self.phase_totals, timings)
        return StepResult(
            assignment=assignment,
            observations=observations,
            truths=np.full(observations.n_tasks, np.nan),
            sigmas=np.full(observations.n_tasks, SIGMA_FLOOR),
            task_domains=domains,
            merges=merges,
            new_domains=new_domains,
            mle_iterations=0,
            allocation_cost=assignment.total_cost(problem.costs),
            task_expertise=self._expertise_for(domains),
            converged=False,
            timings=timings,
            excluded_users=excluded,
        )

    def _merge_guard_reports(self, reports) -> "object | None":
        if self.guard is None:
            return None
        from repro.reliability.guards import GuardReport

        return GuardReport.merge(reports)

    def _problem(
        self,
        tasks: Sequence[IncomingTask],
        expertise: np.ndarray,
        eligible: "np.ndarray | None" = None,
    ) -> AllocationProblem:
        return AllocationProblem(
            expertise=expertise,
            processing_times=np.array([task.processing_time for task in tasks], dtype=float),
            capacities=self._capacities,
            epsilon=self._epsilon,
            costs=np.array([task.cost for task in tasks], dtype=float),
            eligible=eligible,
        )

    def _default_expertise_for(self, domains: np.ndarray) -> np.ndarray:
        from repro.core.expertise import DEFAULT_EXPERTISE

        return np.full((self._n_users, len(domains)), DEFAULT_EXPERTISE, dtype=float)

    def _expertise_for(self, domains: np.ndarray) -> np.ndarray:
        matrix = self._updater.expertise_matrix()
        return matrix.for_tasks(domains.tolist())

    def _collect(self, assignment: Assignment, observe: Callable) -> ObservationMatrix:
        """Collect observations for an assignment.

        ``observe`` may return NaN for a pair to signal a *dropout* — an
        assigned user that never delivered.  Dropped pairs are excluded from
        the observation mask (the capacity they consumed is already spent;
        mobile users that accept and abandon tasks still block their slot).
        Non-finite payloads (inf as well as NaN) are likewise coerced to
        missing: one corrupt value must never reach the truth analysis,
        whose expertise weighting would amplify it.
        """
        pairs = assignment.pairs()
        values = np.zeros(assignment.matrix.shape, dtype=float)
        mask = assignment.matrix.copy()
        if pairs:
            observed = np.asarray(observe(pairs), dtype=float)
            if observed.shape != (len(pairs),):
                raise ValueError("observe() must return one value per pair")
            for (user, task), value in zip(pairs, observed):
                if np.isfinite(value):
                    values[user, task] = value
                else:
                    mask[user, task] = False
        return ObservationMatrix(values=values, mask=mask)

    def _min_cost_estimator(self, domains: np.ndarray) -> Callable:
        """Expertise-aware estimation for Algorithm 2's inner rounds.

        Each round previews the Section 4.2 update on the data collected so
        far *without committing it*, returning refreshed truths, sigmas and
        the per-task expertise the confidence-interval check needs.
        """

        def estimate(observations: ObservationMatrix):
            preview = self._incorporate_phase(
                observations, domains, commit=False, traced=False
            )
            task_expertise = np.vstack(
                [preview.expertise[d] for d in domains.tolist()]
            ).T
            return preview.truths, preview.sigmas, task_expertise

        return estimate
