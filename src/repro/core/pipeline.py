"""The ETA2 closed loop (Figure 1) as a reusable system object.

:class:`ETA2System` glues the three modules together exactly as the paper's
overview describes: a warm-up step with random allocation (no expertise is
known yet), then a repetitive daily process — identify the new tasks'
expertise domains, allocate with the expertise-aware allocator, collect
data, and run expertise-aware truth analysis to update user expertise.

The system is environment-agnostic: data collection happens through an
``observe(pairs) -> values`` callback, so the same object runs against the
simulation world, a recorded dataset, or (in principle) live users.

Two allocation modes mirror the paper's two problem formulations:

- ``allocator="max-quality"`` — ETA2 proper (Algorithm 1 + extra pass),
- ``allocator="min-cost"``   — ETA2-mc (Algorithm 2), which interleaves
  recruiting rounds with data collection inside a single :meth:`step`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.clustering.dynamic import DynamicHierarchicalClustering
from repro.core.allocation.base import DEFAULT_EPSILON, AllocationProblem, Assignment
from repro.core.allocation.baselines import RandomAllocator
from repro.core.allocation.max_quality import MaxQualityAllocator
from repro.core.allocation.min_cost import MinCostAllocator
from repro.core.expertise import ExpertiseMatrix
from repro.core.truth import estimate_truth
from repro.core.update import ExpertiseUpdater
from repro.semantics.distance import semantics_for_descriptions
from repro.semantics.embeddings.base import EmbeddingModel
from repro.semantics.embeddings.cooccurrence import PPMISVDEmbedding
from repro.semantics.embeddings.corpus import generate_topical_corpus
from repro.truthdiscovery.base import ObservationMatrix

__all__ = ["IncomingTask", "StepResult", "ETA2System", "default_embedding"]


@dataclass(frozen=True)
class IncomingTask:
    """A newly created task as handed to the server.

    Exactly one of ``description`` (text datasets — the system clusters it)
    or ``domain`` (pre-known expertise domain, Section 6.1.3 style) must be
    provided.
    """

    processing_time: float
    cost: float = 1.0
    description: "str | None" = None
    domain: "int | None" = None

    def __post_init__(self):
        if self.processing_time <= 0:
            raise ValueError("processing_time must be positive")
        if self.cost < 0:
            raise ValueError("cost must be non-negative")
        if (self.description is None) == (self.domain is None):
            raise ValueError("provide exactly one of description or domain")


@dataclass(frozen=True)
class StepResult:
    """Outcome of one warm-up or daily step."""

    assignment: Assignment
    observations: ObservationMatrix
    truths: np.ndarray
    sigmas: np.ndarray
    task_domains: np.ndarray
    merges: tuple
    new_domains: tuple
    mle_iterations: int
    allocation_cost: float
    #: Per-task expertise ``u_{i, d_j}`` used for this step's allocation and
    #: confidence intervals (post-update values).
    task_expertise: "np.ndarray | None" = None

    @property
    def pair_count(self) -> int:
        return self.assignment.pair_count

    def confidence_intervals(self, confidence: float = 0.95) -> list:
        """Eq. 24 confidence intervals for every task's truth estimate.

        Returns one :class:`~repro.stats.confidence.ConfidenceInterval` per
        task (infinite width for tasks with no informative observation).
        Requires ``task_expertise`` (set by :class:`ETA2System`).
        """
        from repro.stats.confidence import mle_truth_confidence_interval

        if self.task_expertise is None:
            raise ValueError("this result carries no per-task expertise")
        intervals = []
        for task in range(self.observations.n_tasks):
            users = self.observations.observations_for_task(task)[0]
            sigma = float(self.sigmas[task])
            if users.size == 0 or not np.isfinite(sigma) or sigma <= 0:
                intervals.append(
                    mle_truth_confidence_interval(
                        float("nan"), [], sigma=1.0, confidence=confidence
                    )
                )
                continue
            intervals.append(
                mle_truth_confidence_interval(
                    float(self.truths[task]),
                    self.task_expertise[users, task],
                    sigma=sigma,
                    confidence=confidence,
                )
            )
        return intervals


def default_embedding(dim: int = 32, seed: int = 0) -> EmbeddingModel:
    """The library's default embedding backend.

    A PPMI+SVD model trained on the bundled topical corpus — deterministic,
    fast, and sufficient for same-domain words to cluster (DESIGN.md's
    substitution for the paper's Wikipedia-trained skip-gram vectors).
    """
    corpus = generate_topical_corpus(seed=seed)
    return PPMISVDEmbedding(corpus.sentences, dim=dim)


class ETA2System:
    """Expertise-aware truth analysis and task allocation, end to end."""

    def __init__(
        self,
        n_users: int,
        capacities: Sequence[float],
        gamma: float = 0.5,
        alpha: float = 0.5,
        epsilon: float = DEFAULT_EPSILON,
        allocator: str = "max-quality",
        embedding: "EmbeddingModel | None" = None,
        min_cost_round_budget: float = 100.0,
        min_cost_error_limit: float = 0.5,
        min_cost_confidence: float = 0.95,
        extra_greedy_pass: bool = True,
        exploration_rate: float = 0.0,
        clustering_metric: str = "euclidean",
        seed=None,
    ):
        capacities = np.asarray(capacities, dtype=float)
        if capacities.shape != (n_users,):
            raise ValueError("capacities must have one entry per user")
        if allocator not in ("max-quality", "min-cost"):
            raise ValueError("allocator must be 'max-quality' or 'min-cost'")
        if not 0.0 <= exploration_rate <= 1.0:
            raise ValueError("exploration_rate must lie in [0, 1]")
        self._n_users = int(n_users)
        self._capacities = capacities
        self._epsilon = float(epsilon)
        self._allocator_kind = allocator
        self._embedding = embedding
        self._clustering = DynamicHierarchicalClustering(gamma=gamma, metric=clustering_metric)
        self._updater = ExpertiseUpdater(n_users, alpha=alpha)
        if exploration_rate > 0.0:
            from repro.core.allocation.exploring import ExploringMaxQualityAllocator

            self._max_quality = ExploringMaxQualityAllocator(
                exploration_rate=exploration_rate,
                extra_pass=extra_greedy_pass,
                seed=seed,
            )
        else:
            self._max_quality = MaxQualityAllocator(extra_pass=extra_greedy_pass)
        self._min_cost = MinCostAllocator(
            round_budget=min_cost_round_budget,
            error_limit=min_cost_error_limit,
            confidence=min_cost_confidence,
        )
        self._random = RandomAllocator(seed=seed)
        self._warmed_up = False
        #: Per-step MLE iteration counts (consumed by the Fig. 12 experiment).
        self.iteration_log: list = []

    @property
    def n_users(self) -> int:
        return self._n_users

    @property
    def is_warmed_up(self) -> bool:
        return self._warmed_up

    def expertise_matrix(self) -> ExpertiseMatrix:
        """Current per-user per-domain expertise estimates."""
        return self._updater.expertise_matrix()

    # ------------------------------------------------------------------ #
    # Domain identification (Module 1)
    # ------------------------------------------------------------------ #

    def _embedding_model(self) -> EmbeddingModel:
        if self._embedding is None:
            self._embedding = default_embedding()
        return self._embedding

    def _identify_domains(self, tasks: Sequence[IncomingTask]) -> "tuple[np.ndarray, tuple, tuple]":
        """Domain ids for a batch of tasks, plus (merges, new_domains)."""
        with_text = [task.description is not None for task in tasks]
        if all(with_text):
            vectors = np.vstack(
                [
                    item.concatenated
                    for item in semantics_for_descriptions(
                        [task.description for task in tasks], self._embedding_model()
                    )
                ]
            )
            if self._clustering.is_fitted:
                result = self._clustering.add(vectors)
            else:
                result = self._clustering.fit(vectors)
            for merge in result.merges:
                self._updater.merge_domains(merge.kept, merge.deleted)
            return result.added_labels, result.merges, result.new_domains
        if any(with_text):
            raise ValueError("a batch must be all-text or all-preknown-domain tasks")
        labels = np.array([task.domain for task in tasks], dtype=int)
        return labels, (), ()

    # ------------------------------------------------------------------ #
    # Warm-up (random allocation, batch MLE seed)
    # ------------------------------------------------------------------ #

    def warmup(self, tasks: Sequence[IncomingTask], observe: Callable) -> StepResult:
        """Run the warm-up period: random allocation, then batch MLE.

        ``observe(pairs)`` receives ``(user, local_task_index)`` pairs and
        must return one observed value per pair.
        """
        if self._warmed_up:
            raise RuntimeError("warm-up already done; use step()")
        if not tasks:
            raise ValueError("warm-up needs at least one task")
        domains, merges, new_domains = self._identify_domains(tasks)

        problem = self._problem(tasks, self._default_expertise_for(domains))
        assignment = self._random.allocate(problem)
        observations = self._collect(assignment, observe)

        result = estimate_truth(observations, domains)
        self._updater.seed_from_batch(observations, domains, result)
        self.iteration_log.append(result.iterations)
        self._warmed_up = True
        return StepResult(
            assignment=assignment,
            observations=observations,
            truths=result.truths,
            sigmas=result.sigmas,
            task_domains=domains,
            merges=merges,
            new_domains=new_domains,
            mle_iterations=result.iterations,
            allocation_cost=assignment.total_cost(problem.costs),
            task_expertise=result.expertise_for_tasks(domains),
        )

    # ------------------------------------------------------------------ #
    # Daily step (Modules 1 + 3 + 2)
    # ------------------------------------------------------------------ #

    def step(self, tasks: Sequence[IncomingTask], observe: Callable) -> StepResult:
        """One time step: identify domains, allocate, collect, analyse."""
        if not self._warmed_up:
            raise RuntimeError("run warmup() first")
        if not tasks:
            raise ValueError("step needs at least one task")
        domains, merges, new_domains = self._identify_domains(tasks)
        expertise = self._expertise_for(domains)
        problem = self._problem(tasks, expertise)

        if self._allocator_kind == "max-quality":
            assignment = self._max_quality.allocate(problem)
            observations = self._collect(assignment, observe)
            incorporate = self._updater.incorporate(observations, domains)
        else:
            outcome = self._min_cost.run(
                problem,
                observe=observe,
                estimate=self._min_cost_estimator(domains),
            )
            assignment = outcome.assignment
            observations = outcome.observations
            incorporate = self._updater.incorporate(observations, domains)

        self.iteration_log.append(incorporate.iterations)
        task_expertise = np.vstack(
            [incorporate.expertise[d] for d in domains.tolist()]
        ).T
        return StepResult(
            assignment=assignment,
            observations=observations,
            truths=incorporate.truths,
            sigmas=incorporate.sigmas,
            task_domains=domains,
            merges=merges,
            new_domains=new_domains,
            mle_iterations=incorporate.iterations,
            allocation_cost=assignment.total_cost(problem.costs),
            task_expertise=task_expertise,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _problem(self, tasks: Sequence[IncomingTask], expertise: np.ndarray) -> AllocationProblem:
        return AllocationProblem(
            expertise=expertise,
            processing_times=np.array([task.processing_time for task in tasks], dtype=float),
            capacities=self._capacities,
            epsilon=self._epsilon,
            costs=np.array([task.cost for task in tasks], dtype=float),
        )

    def _default_expertise_for(self, domains: np.ndarray) -> np.ndarray:
        from repro.core.expertise import DEFAULT_EXPERTISE

        return np.full((self._n_users, len(domains)), DEFAULT_EXPERTISE, dtype=float)

    def _expertise_for(self, domains: np.ndarray) -> np.ndarray:
        matrix = self._updater.expertise_matrix()
        return matrix.for_tasks(domains.tolist())

    def _collect(self, assignment: Assignment, observe: Callable) -> ObservationMatrix:
        """Collect observations for an assignment.

        ``observe`` may return NaN for a pair to signal a *dropout* — an
        assigned user that never delivered.  Dropped pairs are excluded from
        the observation mask (the capacity they consumed is already spent;
        mobile users that accept and abandon tasks still block their slot).
        """
        pairs = assignment.pairs()
        values = np.zeros(assignment.matrix.shape, dtype=float)
        mask = assignment.matrix.copy()
        if pairs:
            observed = np.asarray(observe(pairs), dtype=float)
            if observed.shape != (len(pairs),):
                raise ValueError("observe() must return one value per pair")
            for (user, task), value in zip(pairs, observed):
                if np.isnan(value):
                    mask[user, task] = False
                else:
                    values[user, task] = value
        return ObservationMatrix(values=values, mask=mask)

    def _min_cost_estimator(self, domains: np.ndarray) -> Callable:
        """Expertise-aware estimation for Algorithm 2's inner rounds.

        Each round previews the Section 4.2 update on the data collected so
        far *without committing it*, returning refreshed truths, sigmas and
        the per-task expertise the confidence-interval check needs.
        """

        def estimate(observations: ObservationMatrix):
            preview = self._updater.incorporate(observations, domains, commit=False)
            task_expertise = np.vstack(
                [preview.expertise[d] for d in domains.tolist()]
            ).T
            return preview.truths, preview.sigmas, task_expertise

        return estimate
