"""The ETA2 core: expertise-aware truth analysis and task allocation.

- :mod:`repro.core.expertise` — per-user per-domain expertise profiles and
  the numerical guards the MLE equations need,
- :mod:`repro.core.truth` — the batch maximum-likelihood estimator of truths,
  base numbers and expertise (Eqs. 5-6),
- :mod:`repro.core.update` — the decayed incremental expertise update across
  time steps (Eqs. 7-9), including new-domain and domain-merge handling,
- :mod:`repro.core.allocation` — max-quality (Algorithm 1) and min-cost
  (Algorithm 2) task allocation plus baseline and exact reference allocators,
- :mod:`repro.core.pipeline` — the closed loop of Figure 1 gluing the three
  modules together over time steps.
"""

from repro.core.expertise import (
    DEFAULT_EXPERTISE,
    MAX_EXPERTISE,
    MIN_EXPERTISE,
    ExpertiseMatrix,
)
from repro.core.truth import TruthAnalysisResult, estimate_truth
from repro.core.update import ExpertiseUpdater, IncorporateResult

__all__ = [
    "DEFAULT_EXPERTISE",
    "ExpertiseMatrix",
    "ExpertiseUpdater",
    "IncorporateResult",
    "MAX_EXPERTISE",
    "MIN_EXPERTISE",
    "TruthAnalysisResult",
    "estimate_truth",
]
