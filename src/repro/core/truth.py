"""Expertise-aware truth analysis: the batch MLE of Section 4.1.

The statistical model: if ``w_ij = 1``, observation ``x_ij`` is a draw from
``N(mu_j, (sigma_j / u_i^{d_j})^2)``.  Setting the log-likelihood derivatives
to zero yields the coordinate equations (Eqs. 5-6)::

    mu_j     = sum_i w_ij u_ij^2 x_ij / sum_i w_ij u_ij^2
    sigma_j^2 = sum_i w_ij u_ij^2 (x_ij - mu_j)^2 / sum_i w_ij
    (u_i^k)^2 = sum_j I(d_j = k) w_ij
                / sum_j I(d_j = k) w_ij (x_ij - mu_j)^2 / sigma_j^2

iterated from ``u = 1`` until every task's truth estimate changes by less
than 5 % between consecutive iterations (the paper's convergence criterion;
an absolute tolerance guards truths near zero).  The iteration count is
recorded — Figure 12 plots its CDF.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.expertise import DEFAULT_EXPERTISE, clamp_expertise, expertise_from_sums
from repro.truthdiscovery.base import ObservationMatrix

__all__ = ["TruthAnalysisResult", "estimate_truth", "update_truths_for_expertise", "SIGMA_FLOOR"]

_LOG = logging.getLogger(__name__)

#: Base numbers are floored away from zero: a task whose observations happen
#: to coincide would otherwise produce a zero variance and infinite weights.
SIGMA_FLOOR = 1e-6

#: The paper's convergence criterion: truth changes below 5 % (relative).
RELATIVE_TOLERANCE = 0.05

#: Absolute fallback for truths at or near zero, where a relative criterion
#: never triggers.
ABSOLUTE_TOLERANCE = 1e-3


@dataclass(frozen=True)
class TruthAnalysisResult:
    """Output of the batch MLE."""

    truths: np.ndarray
    sigmas: np.ndarray
    expertise: np.ndarray
    domain_ids: tuple
    iterations: int
    converged: bool

    def expertise_for_tasks(self, task_domains: np.ndarray) -> np.ndarray:
        """``u_{i, d_j}`` matrix for the given per-task domain-id labels."""
        column_of = {domain_id: k for k, domain_id in enumerate(self.domain_ids)}
        columns = np.array([column_of[d] for d in task_domains], dtype=int)
        return self.expertise[:, columns]


def update_truths_for_expertise(
    observations: ObservationMatrix, task_expertise: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """One Eq. 5 pass: truths and base numbers given per-task expertise.

    ``task_expertise`` is the ``(n_users, n_tasks)`` matrix ``u_{i, d_j}``.
    Returns ``(truths, sigmas)``; unobserved tasks get NaN truth and the
    sigma floor.
    """
    mask = observations.mask
    weights = np.where(mask, task_expertise**2, 0.0)
    weight_totals = weights.sum(axis=0)
    counts = mask.sum(axis=0)

    with np.errstate(invalid="ignore", divide="ignore"):
        truths = np.where(
            weight_totals > 0,
            (weights * observations.values).sum(axis=0) / np.where(weight_totals > 0, weight_totals, 1.0),
            np.nan,
        )
    residuals = np.where(mask, observations.values - np.where(np.isnan(truths), 0.0, truths), 0.0)
    weighted_square = (weights * residuals**2).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        variance = np.where(counts > 0, weighted_square / np.maximum(counts, 1), 0.0)
    sigmas = np.maximum(np.sqrt(variance), SIGMA_FLOOR)
    return truths, sigmas


def _update_expertise(
    observations: ObservationMatrix,
    truths: np.ndarray,
    sigmas: np.ndarray,
    domain_columns: np.ndarray,
    n_domains: int,
) -> np.ndarray:
    """One Eq. 6 pass: per-user per-domain expertise given truths and sigmas."""
    mask = observations.mask
    safe_truths = np.where(np.isnan(truths), 0.0, truths)
    normalised_sq = np.where(mask, ((observations.values - safe_truths) / sigmas) ** 2, 0.0)

    n_users = observations.n_users
    numerators = np.zeros((n_users, n_domains), dtype=float)
    denominators = np.zeros((n_users, n_domains), dtype=float)
    for k in range(n_domains):
        tasks = np.flatnonzero(domain_columns == k)
        if tasks.size == 0:
            continue
        numerators[:, k] = mask[:, tasks].sum(axis=1)
        denominators[:, k] = normalised_sq[:, tasks].sum(axis=1)

    # The shrinkage prior keeps low-data estimates near the default and
    # makes (0, 0) sums yield exactly the uninformed default.
    return expertise_from_sums(numerators, denominators)


def _truths_converged(new: np.ndarray, old: np.ndarray) -> bool:
    both = ~(np.isnan(new) | np.isnan(old))
    if not np.any(both):
        return True
    delta = np.abs(new[both] - old[both])
    scale = np.abs(old[both])
    relative_ok = delta <= RELATIVE_TOLERANCE * np.maximum(scale, 1e-12)
    absolute_ok = delta <= ABSOLUTE_TOLERANCE
    return bool(np.all(relative_ok | absolute_ok))


def estimate_truth(
    observations: ObservationMatrix,
    task_domains,
    initial_expertise: "np.ndarray | None" = None,
    domain_ids: "tuple | None" = None,
    max_iterations: int = 100,
) -> TruthAnalysisResult:
    """Run the Section 4.1 MLE over one batch of observations.

    Parameters
    ----------
    observations:
        The ``(n_users, n_tasks)`` observation matrix.
    task_domains:
        Per-task domain-id labels (length ``n_tasks``).
    initial_expertise:
        Optional ``(n_users, n_domains)`` warm start (ordered like
        ``domain_ids``); defaults to the paper's all-ones initialisation.
    domain_ids:
        The distinct domain ids, in column order.  Defaults to the sorted
        distinct labels of ``task_domains``.
    """
    task_domains = np.asarray(task_domains)
    if task_domains.shape != (observations.n_tasks,):
        raise ValueError("task_domains must have one label per task")
    if observations.observation_count == 0:
        raise ValueError("observation matrix is empty")

    if domain_ids is None:
        domain_ids = tuple(sorted(set(task_domains.tolist())))
    column_of = {domain_id: k for k, domain_id in enumerate(domain_ids)}
    try:
        domain_columns = np.array([column_of[d] for d in task_domains.tolist()], dtype=int)
    except KeyError as missing:
        raise ValueError(f"task domain {missing} not present in domain_ids") from None
    n_domains = len(domain_ids)

    if initial_expertise is None:
        expertise = np.full((observations.n_users, n_domains), DEFAULT_EXPERTISE, dtype=float)
    else:
        expertise = clamp_expertise(np.asarray(initial_expertise, dtype=float).copy())
        if expertise.shape != (observations.n_users, n_domains):
            raise ValueError("initial_expertise has the wrong shape")

    truths = np.full(observations.n_tasks, np.nan)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        task_expertise = expertise[:, domain_columns]
        new_truths, sigmas = update_truths_for_expertise(observations, task_expertise)
        expertise = _update_expertise(observations, new_truths, sigmas, domain_columns, n_domains)
        if iterations > 1 and _truths_converged(new_truths, truths):
            truths = new_truths
            converged = True
            break
        truths = new_truths

    if not converged:
        # Surface degraded estimates instead of silently returning them:
        # an operator watching the logs can tell a bad day from a good one.
        _LOG.warning(
            "truth analysis did not converge within %d iterations (%d tasks, %d observations)",
            max_iterations,
            observations.n_tasks,
            observations.observation_count,
        )
    task_expertise = expertise[:, domain_columns]
    truths, sigmas = update_truths_for_expertise(observations, task_expertise)
    return TruthAnalysisResult(
        truths=truths,
        sigmas=sigmas,
        expertise=expertise,
        domain_ids=tuple(domain_ids),
        iterations=iterations,
        converged=converged,
    )
