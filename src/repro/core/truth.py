"""Expertise-aware truth analysis: the batch MLE of Section 4.1.

The statistical model: if ``w_ij = 1``, observation ``x_ij`` is a draw from
``N(mu_j, (sigma_j / u_i^{d_j})^2)``.  Setting the log-likelihood derivatives
to zero yields the coordinate equations (Eqs. 5-6)::

    mu_j     = sum_i w_ij u_ij^2 x_ij / sum_i w_ij u_ij^2
    sigma_j^2 = sum_i w_ij u_ij^2 (x_ij - mu_j)^2 / sum_i w_ij
    (u_i^k)^2 = sum_j I(d_j = k) w_ij
                / sum_j I(d_j = k) w_ij (x_ij - mu_j)^2 / sigma_j^2

iterated from ``u = 1`` until every task's truth estimate changes by less
than 5 % between consecutive iterations (the paper's convergence criterion;
an absolute tolerance guards truths near zero).  The iteration count is
recorded — Figure 12 plots its CDF.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.expertise import DEFAULT_EXPERTISE, clamp_expertise, expertise_from_sums
from repro.core.robust import RobustConfig, robust_weights, weighted_median_truths
from repro.truthdiscovery.base import ObservationMatrix

__all__ = ["TruthAnalysisResult", "estimate_truth", "update_truths_for_expertise", "SIGMA_FLOOR"]

_LOG = logging.getLogger(__name__)

#: Base numbers are floored away from zero: a task whose observations happen
#: to coincide would otherwise produce a zero variance and infinite weights.
SIGMA_FLOOR = 1e-6

#: The paper's convergence criterion: truth changes below 5 % (relative).
RELATIVE_TOLERANCE = 0.05

#: Absolute fallback for truths at or near zero, where a relative criterion
#: never triggers.
ABSOLUTE_TOLERANCE = 1e-3


@dataclass(frozen=True)
class TruthAnalysisResult:
    """Output of the batch MLE."""

    truths: np.ndarray
    sigmas: np.ndarray
    expertise: np.ndarray
    domain_ids: tuple
    iterations: int
    converged: bool
    #: Largest per-task relative truth change at the last iteration (the
    #: quantity the convergence criterion thresholds at 5 %).  NaN when a
    #: single iteration ran; chaos tests assert on it to tell a *slow* run
    #: (delta just above tolerance) from a *diverging* one.
    final_delta: float = float("nan")
    #: True when the weighted-median fallback replaced a diverged iterate
    #: (only possible with a :class:`~repro.core.robust.RobustConfig` whose
    #: ``fallback`` is enabled).
    used_fallback: bool = False

    def expertise_for_tasks(self, task_domains: np.ndarray) -> np.ndarray:
        """``u_{i, d_j}`` matrix for the given per-task domain-id labels."""
        column_of = {domain_id: k for k, domain_id in enumerate(self.domain_ids)}
        columns = np.array([column_of[d] for d in task_domains], dtype=int)
        return self.expertise[:, columns]


def update_truths_for_expertise(
    observations: ObservationMatrix,
    task_expertise: np.ndarray,
    robust: "RobustConfig | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """One Eq. 5 pass: truths and base numbers given per-task expertise.

    ``task_expertise`` is the ``(n_users, n_tasks)`` matrix ``u_{i, d_j}``.
    Returns ``(truths, sigmas)``; unobserved tasks get NaN truth and the
    sigma floor.  With a :class:`~repro.core.robust.RobustConfig`, the
    pass is reweighted once (IRLS step): standardized residuals under the
    plain pass's pilot estimates earn each observation a Huber or trimming
    weight that multiplies its ``u^2`` likelihood weight.

    The sums are scatter-sums (``np.bincount``) over the observed entries
    in row-major order, the same kernel :class:`_SparseObservations` uses.
    Beyond skipping the masked zeros, this makes each task's accumulation
    order a function of its *own* observations only, so computing a column
    subset (the domain-sharded engine in :mod:`repro.core.parallel` does
    exactly that) reproduces the full-matrix result bit for bit — a dense
    ``sum(axis=0)`` does not, its reduction tree changes with the matrix
    width.
    """
    mask = observations.mask
    n_tasks = observations.n_tasks
    rows, cols = np.nonzero(mask)
    values = observations.values[rows, cols]
    obs_expertise = task_expertise[rows, cols]

    weights = obs_expertise**2
    weight_totals = np.bincount(cols, weights=weights, minlength=n_tasks)
    weighted_values = np.bincount(cols, weights=weights * values, minlength=n_tasks)
    counts = np.bincount(cols, minlength=n_tasks)
    observed = weight_totals > 0
    truths = np.where(observed, weighted_values / np.where(observed, weight_totals, 1.0), np.nan)
    safe_truths = np.where(np.isnan(truths), 0.0, truths)
    residuals = values - safe_truths[cols]
    weighted_square = np.bincount(cols, weights=weights * residuals**2, minlength=n_tasks)
    variance = np.where(counts > 0, weighted_square / np.maximum(counts, 1), 0.0)
    sigmas = np.maximum(np.sqrt(variance), SIGMA_FLOOR)
    if robust is None or robust.method == "none":
        return truths, sigmas
    safe_truths = np.where(np.isnan(truths), 0.0, truths)
    z = (values - safe_truths[cols]) * obs_expertise / sigmas[cols]
    rw = robust_weights(z, cols, observations.n_tasks, robust)
    combined = obs_expertise**2 * rw
    robust_totals = np.bincount(cols, weights=combined, minlength=observations.n_tasks)
    observed = robust_totals > 0
    weighted_values = np.bincount(cols, weights=combined * values, minlength=observations.n_tasks)
    robust_truths = np.where(
        observed, weighted_values / np.where(observed, robust_totals, 1.0), truths
    )
    safe_truths = np.where(np.isnan(robust_truths), 0.0, robust_truths)
    obs_residuals = values - safe_truths[cols]
    weighted_sq = np.bincount(
        cols, weights=combined * obs_residuals**2, minlength=observations.n_tasks
    )
    rw_counts = np.bincount(cols, weights=rw, minlength=observations.n_tasks)
    variance = np.where(rw_counts > 0, weighted_sq / np.maximum(rw_counts, 1e-12), 0.0)
    robust_sigmas = np.where(observed, np.maximum(np.sqrt(variance), SIGMA_FLOOR), sigmas)
    return robust_truths, robust_sigmas


class _SparseObservations:
    """The coordinate iteration's loop-invariant sparse structure.

    Observation masks are typically 10-30 % dense in this system, so the
    per-iteration Eq. 5/6 passes work on the ``nnz`` observed entries
    (gathers plus ``bincount`` scatter-sums) instead of full
    ``(n_users, n_tasks)`` products.  Everything that does not depend on
    the current truths/expertise — the observed coordinates, their values,
    the per-observation domain column, per-task counts, and the Eq. 6
    numerators (pure observation counts) — is computed exactly once per
    :func:`estimate_truth` call instead of once per iteration.
    """

    __slots__ = (
        "rows",
        "cols",
        "values",
        "domain_cols",
        "flat_user_domain",
        "task_counts",
        "count_sums",
        "n_users",
        "n_tasks",
        "n_domains",
    )

    def __init__(self, observations: ObservationMatrix, domain_columns: np.ndarray, n_domains: int):
        self.n_users = observations.n_users
        self.n_tasks = observations.n_tasks
        self.n_domains = int(n_domains)
        self.rows, self.cols = np.nonzero(observations.mask)
        self.values = observations.values[self.rows, self.cols]
        self.domain_cols = domain_columns[self.cols]
        self.flat_user_domain = self.rows * self.n_domains + self.domain_cols
        self.task_counts = np.bincount(self.cols, minlength=self.n_tasks)
        # Eq. 6 numerators: per-(user, domain) observation counts.  They are
        # independent of the iterate, so the dense version recomputed them
        # every iteration for nothing.
        self.count_sums = (
            np.bincount(self.flat_user_domain, minlength=self.n_users * self.n_domains)
            .reshape(self.n_users, self.n_domains)
            .astype(float)
        )

    def truth_pass(self, expertise: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Eq. 5 on observed entries only (matches the dense reference)."""
        weights = expertise[self.rows, self.domain_cols] ** 2
        weight_totals = np.bincount(self.cols, weights=weights, minlength=self.n_tasks)
        weighted_values = np.bincount(
            self.cols, weights=weights * self.values, minlength=self.n_tasks
        )
        observed = weight_totals > 0
        truths = np.where(
            observed, weighted_values / np.where(observed, weight_totals, 1.0), np.nan
        )
        safe_truths = np.where(np.isnan(truths), 0.0, truths)
        residuals = self.values - safe_truths[self.cols]
        weighted_square = np.bincount(
            self.cols, weights=weights * residuals**2, minlength=self.n_tasks
        )
        variance = np.where(
            self.task_counts > 0, weighted_square / np.maximum(self.task_counts, 1), 0.0
        )
        sigmas = np.maximum(np.sqrt(variance), SIGMA_FLOOR)
        return truths, sigmas

    def robust_truth_pass(
        self, expertise: np.ndarray, config: RobustConfig
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Eq. 5 with one IRLS reweighting step per outer iteration.

        A plain pass produces pilot truths/sigmas; each observation's
        standardized residual ``z = (x - mu) u / sigma`` under that pilot
        then earns it a robustness weight (Huber or 0/1 trimming) that
        multiplies its likelihood weight ``u^2`` in a second pass.  The
        sigma line divides by the *robust* observation count (sum of
        robustness weights) — the soft-count analogue of Eq. 5's plain
        count — so down-weighted outliers stop inflating base numbers too.
        """
        truths, sigmas = self.truth_pass(expertise)
        obs_expertise = expertise[self.rows, self.domain_cols]
        weights = obs_expertise**2
        safe_truths = np.where(np.isnan(truths), 0.0, truths)
        z = (self.values - safe_truths[self.cols]) * obs_expertise / sigmas[self.cols]
        rw = robust_weights(z, self.cols, self.n_tasks, config)
        combined = weights * rw
        weight_totals = np.bincount(self.cols, weights=combined, minlength=self.n_tasks)
        observed = weight_totals > 0
        weighted_values = np.bincount(
            self.cols, weights=combined * self.values, minlength=self.n_tasks
        )
        # A task whose every observation got zero robust weight keeps its
        # pilot estimate instead of collapsing to NaN.
        robust_truths = np.where(
            observed, weighted_values / np.where(observed, weight_totals, 1.0), truths
        )
        safe_truths = np.where(np.isnan(robust_truths), 0.0, robust_truths)
        residuals = self.values - safe_truths[self.cols]
        weighted_square = np.bincount(
            self.cols, weights=combined * residuals**2, minlength=self.n_tasks
        )
        rw_counts = np.bincount(self.cols, weights=rw, minlength=self.n_tasks)
        variance = np.where(rw_counts > 0, weighted_square / np.maximum(rw_counts, 1e-12), 0.0)
        robust_sigmas = np.where(observed, np.maximum(np.sqrt(variance), SIGMA_FLOOR), sigmas)
        return robust_truths, robust_sigmas

    def fallback_truths(self, expertise: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Guaranteed-finite weighted-median estimate for diverged runs."""
        return weighted_median_truths(
            self.rows,
            self.cols,
            self.values,
            expertise[self.rows, self.domain_cols],
            self.n_tasks,
            SIGMA_FLOOR,
        )

    def expertise_pass(self, truths: np.ndarray, sigmas: np.ndarray) -> np.ndarray:
        """Eq. 6 via one scatter-sum over the observed entries."""
        safe_truths = np.where(np.isnan(truths), 0.0, truths)
        normalised_sq = ((self.values - safe_truths[self.cols]) / sigmas[self.cols]) ** 2
        denominators = np.bincount(
            self.flat_user_domain,
            weights=normalised_sq,
            minlength=self.n_users * self.n_domains,
        ).reshape(self.n_users, self.n_domains)
        # The shrinkage prior keeps low-data estimates near the default and
        # makes (0, 0) sums yield exactly the uninformed default.
        return expertise_from_sums(self.count_sums, denominators)


def _truths_converged(new: np.ndarray, old: np.ndarray) -> bool:
    both = ~(np.isnan(new) | np.isnan(old))
    if not np.any(both):
        return True
    delta = np.abs(new[both] - old[both])
    scale = np.abs(old[both])
    relative_ok = delta <= RELATIVE_TOLERANCE * np.maximum(scale, 1e-12)
    absolute_ok = delta <= ABSOLUTE_TOLERANCE
    return bool(np.all(relative_ok | absolute_ok))


def _truth_delta(new: np.ndarray, old: np.ndarray) -> float:
    """Largest per-task relative change between consecutive iterates.

    Diagnostic companion to :func:`_truths_converged` (which stays the
    bitwise-frozen decision rule): the scale is floored at
    ``ABSOLUTE_TOLERANCE / RELATIVE_TOLERANCE`` so near-zero truths report
    their absolute movement on the same 5 %-comparable footing.
    """
    both = ~(np.isnan(new) | np.isnan(old))
    if not np.any(both):
        return 0.0
    delta = np.abs(new[both] - old[both])
    scale = np.maximum(np.abs(old[both]), ABSOLUTE_TOLERANCE / RELATIVE_TOLERANCE)
    return float(np.max(delta / scale))


def estimate_truth(
    observations: ObservationMatrix,
    task_domains,
    initial_expertise: "np.ndarray | None" = None,
    domain_ids: "tuple | None" = None,
    max_iterations: int = 100,
    robust: "RobustConfig | None" = None,
    tracer=None,
) -> TruthAnalysisResult:
    """Run the Section 4.1 MLE over one batch of observations.

    Parameters
    ----------
    observations:
        The ``(n_users, n_tasks)`` observation matrix.
    task_domains:
        Per-task domain-id labels (length ``n_tasks``).
    initial_expertise:
        Optional ``(n_users, n_domains)`` warm start (ordered like
        ``domain_ids``); defaults to the paper's all-ones initialisation.
    domain_ids:
        The distinct domain ids, in column order.  Defaults to the sorted
        distinct labels of ``task_domains``.
    robust:
        Optional :class:`~repro.core.robust.RobustConfig` enabling Huber /
        trimmed reweighting of the Eq. 5 truth pass, iteration damping,
        and the weighted-median divergence fallback.  ``None`` (the
        default) is bit-identical to the plain paper MLE.  The Eq. 6
        expertise pass deliberately stays *unweighted*: down-weighting an
        adversary's residuals there would hand them back a high expertise
        estimate, which is exactly the wrong direction.
    tracer:
        Optional :class:`~repro.observability.RunTracer`; when enabled it
        receives one ``mle.iteration`` event per Eq. 5-6 sweep (with the
        max relative truth delta) and a ``mle.converged`` /
        ``mle.non_convergence`` / ``mle.fallback`` verdict.  The extra
        delta computations are trace-only and never change the estimate.
    """
    task_domains = np.asarray(task_domains)
    if task_domains.shape != (observations.n_tasks,):
        raise ValueError("task_domains must have one label per task")
    if observations.observation_count == 0:
        raise ValueError("observation matrix is empty")

    if domain_ids is None:
        domain_ids = tuple(sorted(set(task_domains.tolist())))
    column_of = {domain_id: k for k, domain_id in enumerate(domain_ids)}
    try:
        domain_columns = np.array([column_of[d] for d in task_domains.tolist()], dtype=int)
    except KeyError as missing:
        raise ValueError(f"task domain {missing} not present in domain_ids") from None
    n_domains = len(domain_ids)

    if initial_expertise is None:
        expertise = np.full((observations.n_users, n_domains), DEFAULT_EXPERTISE, dtype=float)
    else:
        expertise = clamp_expertise(np.asarray(initial_expertise, dtype=float).copy())
        if expertise.shape != (observations.n_users, n_domains):
            raise ValueError("initial_expertise has the wrong shape")

    sparse = _SparseObservations(observations, domain_columns, n_domains)

    reweight = robust is not None and robust.method != "none"
    damping = 1.0 if robust is None else robust.damping

    traced = tracer is not None and tracer.enabled

    truths = np.full(observations.n_tasks, np.nan)
    converged = False
    final_delta = float("nan")
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if reweight:
            new_truths, sigmas = sparse.robust_truth_pass(expertise, robust)
        else:
            new_truths, sigmas = sparse.truth_pass(expertise)
        if damping < 1.0 and iterations > 1:
            both = ~(np.isnan(new_truths) | np.isnan(truths))
            new_truths = np.where(
                both, damping * new_truths + (1.0 - damping) * truths, new_truths
            )
        expertise = sparse.expertise_pass(new_truths, sigmas)
        if iterations > 1:
            final_delta = _truth_delta(new_truths, truths)
            if traced:
                tracer.emit("mle.iteration", iteration=iterations, delta=final_delta)
            if _truths_converged(new_truths, truths):
                truths = new_truths
                converged = True
                break
        elif traced:
            tracer.emit("mle.iteration", iteration=iterations, delta=None)
        truths = new_truths

    if traced and converged:
        tracer.emit("mle.converged", iterations=iterations, final_delta=final_delta)
    if not converged:
        if traced:
            tracer.emit(
                "mle.non_convergence",
                iterations=iterations,
                final_delta=final_delta,
                n_tasks=observations.n_tasks,
                n_observations=observations.observation_count,
            )
        # Surface degraded estimates instead of silently returning them:
        # an operator watching the logs can tell a bad day from a good one.
        _LOG.warning(
            "truth analysis did not converge within %d iterations "
            "(final relative change %.4g, %d tasks, %d observations)",
            max_iterations,
            final_delta,
            observations.n_tasks,
            observations.observation_count,
        )
    if reweight:
        truths, sigmas = sparse.robust_truth_pass(expertise, robust)
    else:
        truths, sigmas = sparse.truth_pass(expertise)

    used_fallback = False
    if robust is not None and robust.fallback and not converged:
        observed = sparse.task_counts > 0
        diverged = (
            bool(np.any(~np.isfinite(truths[observed])))
            or not np.isfinite(final_delta)
            or final_delta > robust.fallback_delta
        )
        if diverged:
            truths, sigmas = sparse.fallback_truths(expertise)
            used_fallback = True
            if traced:
                tracer.emit(
                    "mle.fallback",
                    final_delta=final_delta,
                    fallback_delta=robust.fallback_delta,
                    n_tasks=observations.n_tasks,
                )
            _LOG.warning(
                "truth analysis diverged (relative change %.4g > %.4g); "
                "using weighted-median fallback for %d tasks",
                final_delta,
                robust.fallback_delta,
                observations.n_tasks,
            )
    return TruthAnalysisResult(
        truths=truths,
        sigmas=sigmas,
        expertise=expertise,
        domain_ids=tuple(domain_ids),
        iterations=iterations,
        converged=converged,
        final_delta=final_delta,
        used_fallback=used_fallback,
    )
