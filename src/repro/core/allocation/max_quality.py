"""Max-quality task allocation: Algorithm 1 plus the approximation fix.

The greedy heuristic repeatedly assigns the (user, task) pair with the
highest *efficiency* — marginal objective gain per unit of processing time
(Definition 1)::

    efficiency(i, j) = p_ij * (1 - p_j) / t_j     if t_j <= T'_i, else 0

where ``p_j`` is the task's current coverage probability and ``T'_i`` the
user's remaining capacity.  Following the paper's Section 5.1.2 analysis
(greedy on a monotone submodular objective under a knapsack constraint can be
arbitrarily bad when processing times differ wildly), a second greedy pass
that ignores processing times in the efficiency — the cardinality greedy —
is run as well, and the better of the two solutions is returned, giving the
classic 1/2-approximation guarantee.

The same greedy core also serves Algorithm 2 (min-cost), which adds a
per-round cost budget and restricts attention to the not-yet-satisfied tasks.

Since the objective is monotone submodular, the greedy runs on the
lazy-evaluation (CELF) priority-queue kernel of
:mod:`repro.core.allocation.lazy_greedy` — picks are bit-identical to the
exhaustive per-pick scan (frozen as
:func:`repro.perf.reference.reference_greedy_allocate`), but stale tasks
are only re-evaluated when they surface at the top of the heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation.base import AllocationProblem, Assignment
from repro.core.allocation.lazy_greedy import GreedyOutcome, GreedyStats, lazy_greedy_allocate

__all__ = ["GreedyOutcome", "GreedyStats", "greedy_allocate", "MaxQualityAllocator"]


def greedy_allocate(
    problem: AllocationProblem,
    initial: "Assignment | None" = None,
    divide_by_time: bool = True,
    cost_budget: "float | None" = None,
    active_tasks: "np.ndarray | None" = None,
    accuracy: "np.ndarray | None" = None,
    pair_times: "np.ndarray | None" = None,
) -> GreedyOutcome:
    """Run the Algorithm 1 greedy loop (lazy CELF evaluation).

    Parameters
    ----------
    initial:
        Pairs assigned in earlier rounds (min-cost).  Their processing time
        is already deducted from capacities, their ``p_ij`` already counts
        toward task coverage, and their cost does **not** count against
        ``cost_budget``.
    divide_by_time:
        True for Definition 1's efficiency; False for the cardinality-greedy
        extra pass (gain not divided by ``t_j``).
    cost_budget:
        Maximum cost of *newly added* pairs (Algorithm 2's ``c^o``).
    active_tasks:
        Boolean mask of tasks eligible for new assignments (min-cost skips
        tasks whose quality requirement is already met).
    accuracy:
        Precomputed ``problem.accuracy_matrix()`` (Eq. 11) — pass it when
        running several greedy passes over one problem so the ``erf`` over
        ``n_users x n_tasks`` is paid once.
    pair_times:
        Precomputed ``problem.pair_times()`` broadcast, same idea.
    """
    return lazy_greedy_allocate(
        problem,
        initial=initial,
        divide_by_time=divide_by_time,
        cost_budget=cost_budget,
        active_tasks=active_tasks,
        accuracy=accuracy,
        pair_times=pair_times,
    )


@dataclass
class MaxQualityAllocator:
    """Max-quality allocation with the guaranteed-approximation extra pass.

    With ``extra_pass=True`` (the default, per the end of Section 5.1.2) the
    time-divided greedy and the cardinality greedy both run and the higher-
    objective solution wins.  The Eq. 11 accuracy matrix is computed once
    per :meth:`allocate` and threaded through both passes and the objective.
    """

    extra_pass: bool = True
    #: Populated after each allocate() call: which pass won ("efficiency" or
    #: "cardinality").  Exposed for the ablation benchmarks.
    last_winner: str = field(default="", init=False)
    #: Merged lazy-kernel work counters of the most recent allocate() call
    #: (both passes), for telemetry.
    last_stats: "GreedyStats | None" = field(default=None, init=False)

    def allocate(self, problem: AllocationProblem) -> Assignment:
        accuracy = problem.accuracy_matrix()
        efficiency = greedy_allocate(problem, divide_by_time=True, accuracy=accuracy)
        if not self.extra_pass:
            self.last_winner = "efficiency"
            self.last_stats = efficiency.stats
            return efficiency.assignment
        cardinality = greedy_allocate(problem, divide_by_time=False, accuracy=accuracy)
        self.last_stats = (
            efficiency.stats.merged(cardinality.stats)
            if efficiency.stats is not None
            else cardinality.stats
        )
        if cardinality.objective > efficiency.objective:
            self.last_winner = "cardinality"
            return cardinality.assignment
        self.last_winner = "efficiency"
        return efficiency.assignment
