"""Max-quality task allocation: Algorithm 1 plus the approximation fix.

The greedy heuristic repeatedly assigns the (user, task) pair with the
highest *efficiency* — marginal objective gain per unit of processing time
(Definition 1)::

    efficiency(i, j) = p_ij * (1 - p_j) / t_j     if t_j <= T'_i, else 0

where ``p_j`` is the task's current coverage probability and ``T'_i`` the
user's remaining capacity.  Following the paper's Section 5.1.2 analysis
(greedy on a monotone submodular objective under a knapsack constraint can be
arbitrarily bad when processing times differ wildly), a second greedy pass
that ignores processing times in the efficiency — the cardinality greedy —
is run as well, and the better of the two solutions is returned, giving the
classic 1/2-approximation guarantee.

The same greedy core also serves Algorithm 2 (min-cost), which adds a
per-round cost budget and restricts attention to the not-yet-satisfied tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation.base import AllocationProblem, Assignment, allocation_objective

__all__ = ["GreedyOutcome", "greedy_allocate", "MaxQualityAllocator"]


@dataclass(frozen=True)
class GreedyOutcome:
    """Result of one greedy pass."""

    assignment: Assignment
    added_pairs: tuple
    objective: float
    spent_cost: float


def greedy_allocate(
    problem: AllocationProblem,
    initial: "Assignment | None" = None,
    divide_by_time: bool = True,
    cost_budget: "float | None" = None,
    active_tasks: "np.ndarray | None" = None,
) -> GreedyOutcome:
    """Run the Algorithm 1 greedy loop.

    Parameters
    ----------
    initial:
        Pairs assigned in earlier rounds (min-cost).  Their processing time
        is already deducted from capacities, their ``p_ij`` already counts
        toward task coverage, and their cost does **not** count against
        ``cost_budget``.
    divide_by_time:
        True for Definition 1's efficiency; False for the cardinality-greedy
        extra pass (gain not divided by ``t_j``).
    cost_budget:
        Maximum cost of *newly added* pairs (Algorithm 2's ``c^o``).
    active_tasks:
        Boolean mask of tasks eligible for new assignments (min-cost skips
        tasks whose quality requirement is already met).
    """
    n_users, n_tasks = problem.n_users, problem.n_tasks
    p = problem.accuracy_matrix()
    times = problem.pair_times()  # (n_users, n_tasks); per-task t_j broadcast
    costs = problem.costs
    eligible = problem.eligible_mask()

    if initial is None:
        assigned = np.zeros((n_users, n_tasks), dtype=bool)
    else:
        if initial.matrix.shape != (n_users, n_tasks):
            raise ValueError("initial assignment shape does not match the problem")
        assigned = initial.matrix.copy()
    remaining = problem.capacities - (assigned * times).sum(axis=1)
    if np.any(remaining < -1e-9):
        raise ValueError("initial assignment already exceeds capacities")
    miss = np.prod(np.where(assigned, 1.0 - p, 1.0), axis=0)

    if active_tasks is None:
        active = np.ones(n_tasks, dtype=bool)
    else:
        active = np.asarray(active_tasks, dtype=bool)
        if active.shape != (n_tasks,):
            raise ValueError("active_tasks must have one flag per task")
        active = active.copy()

    spent = 0.0
    budget_blocked = np.zeros(n_tasks, dtype=bool)

    def best_for_task(task: int) -> "tuple[float, int]":
        if not active[task] or budget_blocked[task]:
            return (0.0, -1)
        feasible = (~assigned[:, task]) & eligible & (times[:, task] <= remaining + 1e-12)
        if not np.any(feasible):
            return (0.0, -1)
        gain = p[:, task] * miss[task]
        if divide_by_time:
            gain = gain / times[:, task]
        gain = np.where(feasible, gain, 0.0)
        user = int(np.argmax(gain))
        return (float(gain[user]), user)

    best_eff = np.zeros(n_tasks, dtype=float)
    best_user = np.full(n_tasks, -1, dtype=int)
    for task in range(n_tasks):
        best_eff[task], best_user[task] = best_for_task(task)

    added: list = []
    while True:
        task = int(np.argmax(best_eff))
        if best_eff[task] <= 0.0:
            break
        if cost_budget is not None and spent + costs[task] > cost_budget + 1e-12:
            # Cost only grows, so this task can never be afforded again.
            budget_blocked[task] = True
            best_eff[task], best_user[task] = 0.0, -1
            continue
        user = best_user[task]
        assigned[user, task] = True
        remaining[user] -= times[user, task]
        miss[task] *= 1.0 - p[user, task]
        spent += costs[task]
        added.append((user, task))
        # Stale entries: the chosen task (its coverage changed) and every
        # task whose cached best user was the one whose capacity shrank.
        stale = np.flatnonzero(best_user == user)
        best_eff[task], best_user[task] = best_for_task(task)
        for other in stale:
            if other != task:
                best_eff[other], best_user[other] = best_for_task(int(other))

    assignment = Assignment(matrix=assigned)
    return GreedyOutcome(
        assignment=assignment,
        added_pairs=tuple(added),
        objective=allocation_objective(problem, assignment),
        spent_cost=spent,
    )


@dataclass
class MaxQualityAllocator:
    """Max-quality allocation with the guaranteed-approximation extra pass.

    With ``extra_pass=True`` (the default, per the end of Section 5.1.2) the
    time-divided greedy and the cardinality greedy both run and the higher-
    objective solution wins.
    """

    extra_pass: bool = True
    #: Populated after each allocate() call: which pass won ("efficiency" or
    #: "cardinality").  Exposed for the ablation benchmarks.
    last_winner: str = field(default="", init=False)

    def allocate(self, problem: AllocationProblem) -> Assignment:
        efficiency = greedy_allocate(problem, divide_by_time=True)
        if not self.extra_pass:
            self.last_winner = "efficiency"
            return efficiency.assignment
        cardinality = greedy_allocate(problem, divide_by_time=False)
        if cardinality.objective > efficiency.objective:
            self.last_winner = "cardinality"
            return cardinality.assignment
        self.last_winner = "efficiency"
        return efficiency.assignment
