"""Min-cost task allocation: the iterative Algorithm 2.

Definition 2: recruit users at minimum cost such that every task's estimate
satisfies the quality requirement ``|mu_hat_j - mu_j| / sigma_j < eps_bar``.
Because no data exists at allocation time, the requirement is checked
*probabilistically*: after each round of data collection, the task passes
once the ``1 - alpha`` Fisher-information confidence interval for its truth
(Eq. 24) is no wider than ``2 * eps_bar * sigma_j``.

Each round spends at most ``c^o`` of recruiting budget through the
Algorithm 1 greedy (restricted to the not-yet-satisfied tasks), collects the
newly assigned observations, re-estimates truths from *all* data gathered so
far, and re-checks the confidence intervals.  The loop ends when every task
passes or no further assignment is possible (capacities exhausted).

The allocator is driven through two callbacks so it works both in the
simulation engine and against recorded datasets:

- ``observe(pairs)`` returns the observed values for newly assigned pairs;
- ``estimate(observations)`` returns ``(truths, sigmas, task_expertise)``
  from the cumulative observations — by default Eq. 5 with the problem's
  prior expertise, the pipeline passes the full expertise-aware analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.allocation.base import AllocationProblem, Assignment
from repro.core.allocation.lazy_greedy import GreedyStats
from repro.core.allocation.max_quality import greedy_allocate
from repro.core.truth import update_truths_for_expertise
from repro.stats.confidence import mle_truth_confidence_interval
from repro.truthdiscovery.base import ObservationMatrix

__all__ = ["MinCostRound", "MinCostOutcome", "MinCostAllocator"]


@dataclass(frozen=True)
class MinCostRound:
    """Bookkeeping for one Algorithm 2 iteration."""

    added_pairs: tuple
    round_cost: float
    satisfied_after: int


@dataclass(frozen=True)
class MinCostOutcome:
    """Final state of a min-cost allocation run."""

    assignment: Assignment
    observations: ObservationMatrix
    truths: np.ndarray
    sigmas: np.ndarray
    satisfied: np.ndarray
    rounds: tuple
    total_cost: float
    #: Merged lazy-kernel work counters across every round's greedy passes
    #: (None when no greedy pass ran).
    greedy_stats: "GreedyStats | None" = None

    @property
    def all_satisfied(self) -> bool:
        return bool(np.all(self.satisfied))

    @property
    def round_count(self) -> int:
        return len(self.rounds)


class MinCostAllocator:
    """Iterative min-cost allocation (Algorithm 2)."""

    def __init__(
        self,
        round_budget: float,
        error_limit: float = 0.5,
        confidence: float = 0.95,
        max_rounds: int = 100,
        extra_pass: bool = True,
    ):
        if round_budget <= 0:
            raise ValueError("round_budget (c^o) must be positive")
        if error_limit <= 0:
            raise ValueError("error_limit (eps_bar) must be positive")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must lie in (0, 1)")
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        self._round_budget = float(round_budget)
        self._error_limit = float(error_limit)
        self._confidence = float(confidence)
        self._max_rounds = int(max_rounds)
        # The paper (end of Section 5.2.2a) notes the Section 5.1.2 extra
        # step "can also be added" to each round's greedy; on by default.
        self._extra_pass = bool(extra_pass)

    def run(
        self,
        problem: AllocationProblem,
        observe: Callable,
        estimate: "Callable | None" = None,
    ) -> MinCostOutcome:
        """Run the iterative allocation until the quality requirement holds.

        ``observe(pairs)`` must return one observed value per ``(user,
        task)`` pair.  ``estimate(observations)`` must return ``(truths,
        sigmas, task_expertise)`` over the full task set.
        """
        n_users, n_tasks = problem.n_users, problem.n_tasks
        if estimate is None:
            estimate = self._default_estimator(problem)

        # The problem is fixed across rounds: the Eq. 11 accuracy matrix (a
        # full erf over n_users x n_tasks) and the pair-times broadcast are
        # computed once here and threaded through every round's greedy.
        accuracy = problem.accuracy_matrix()
        pair_times = problem.pair_times()

        assignment = Assignment.empty(n_users, n_tasks)
        values = np.zeros((n_users, n_tasks), dtype=float)
        mask = np.zeros((n_users, n_tasks), dtype=bool)
        satisfied = np.zeros(n_tasks, dtype=bool)
        truths = np.full(n_tasks, np.nan)
        sigmas = np.full(n_tasks, np.nan)
        rounds: list = []
        total_cost = 0.0
        greedy_stats: "GreedyStats | None" = None

        for _ in range(self._max_rounds):
            outcome = greedy_allocate(
                problem,
                initial=assignment,
                divide_by_time=True,
                cost_budget=self._round_budget,
                active_tasks=~satisfied,
                accuracy=accuracy,
                pair_times=pair_times,
            )
            if outcome.stats is not None:
                greedy_stats = outcome.stats.merged(greedy_stats)
            if self._extra_pass:
                cardinality = greedy_allocate(
                    problem,
                    initial=assignment,
                    divide_by_time=False,
                    cost_budget=self._round_budget,
                    active_tasks=~satisfied,
                    accuracy=accuracy,
                    pair_times=pair_times,
                )
                if cardinality.stats is not None:
                    greedy_stats = cardinality.stats.merged(greedy_stats)
                if cardinality.objective > outcome.objective:
                    outcome = cardinality
            if not outcome.added_pairs:
                break
            assignment = outcome.assignment
            total_cost += outcome.spent_cost

            observed = observe(list(outcome.added_pairs))
            observed = np.asarray(observed, dtype=float)
            if observed.shape != (len(outcome.added_pairs),):
                raise ValueError("observe() must return one value per new pair")
            touched: set = set()
            for (user, task), value in zip(outcome.added_pairs, observed):
                if not np.isfinite(value):
                    # Dropout or corrupt (non-finite) payload: the recruiting
                    # cost is spent and the capacity consumed, but no usable
                    # observation arrives — the quality check simply stays
                    # unsatisfied and later rounds recruit replacements.
                    continue
                values[user, task] = value
                mask[user, task] = True
                touched.add(int(task))

            observations = ObservationMatrix(values=values, mask=mask)
            truths, sigmas, task_expertise = estimate(observations)
            # Only tasks with new usable observations can newly pass the
            # Line 12-15 check; satisfied tasks are latched (they were
            # removed from active_tasks and receive no further data).
            satisfied = self._check_quality(
                assignment,
                truths,
                sigmas,
                task_expertise,
                satisfied=satisfied,
                recheck=sorted(touched),
            )
            rounds.append(
                MinCostRound(
                    added_pairs=outcome.added_pairs,
                    round_cost=outcome.spent_cost,
                    satisfied_after=int(satisfied.sum()),
                )
            )
            if np.all(satisfied):
                break

        return MinCostOutcome(
            assignment=assignment,
            observations=ObservationMatrix(values=values, mask=mask),
            truths=truths,
            sigmas=sigmas,
            satisfied=satisfied,
            rounds=tuple(rounds),
            total_cost=total_cost,
            greedy_stats=greedy_stats,
        )

    def _check_quality(
        self,
        assignment: Assignment,
        truths: np.ndarray,
        sigmas: np.ndarray,
        task_expertise: np.ndarray,
        satisfied: "np.ndarray | None" = None,
        recheck: "Sequence | None" = None,
    ) -> np.ndarray:
        """Line 12-15 of Algorithm 2: the per-task confidence-interval test.

        ``satisfied`` carries the previous round's verdicts and ``recheck``
        the tasks that received new usable observations this round — only
        those are re-tested, every other task keeps its status.  Omitting
        both re-checks the full task set (the cold-start behaviour).
        """
        n_tasks = assignment.n_tasks
        satisfied = (
            np.zeros(n_tasks, dtype=bool) if satisfied is None else satisfied.copy()
        )
        tasks = range(n_tasks) if recheck is None else recheck
        for task in tasks:
            users = assignment.users_of_task(task)
            if users.size == 0 or np.isnan(truths[task]):
                continue
            sigma = float(sigmas[task])
            if not np.isfinite(sigma) or sigma <= 0:
                continue
            interval = mle_truth_confidence_interval(
                estimate=float(truths[task]),
                expertise=task_expertise[users, task],
                sigma=sigma,
                confidence=self._confidence,
            )
            satisfied[task] = interval.satisfies_quality(sigma, self._error_limit)
        return satisfied

    @staticmethod
    def _default_estimator(problem: AllocationProblem) -> Callable:
        """Eq. 5 with the problem's prior expertise held fixed."""

        def estimate(observations: ObservationMatrix):
            truths, sigmas = update_truths_for_expertise(observations, problem.expertise)
            return truths, sigmas, problem.expertise

        return estimate
