"""Baseline allocators used by the comparison approaches (Section 6.3).

- :class:`RandomAllocator` — tasks are allocated to users uniformly at
  random until capacities are exhausted.  Used in the warm-up period (no
  expertise is known yet) and by the "Baseline" mean approach throughout.
- :class:`ReliabilityGreedyAllocator` — the allocation strategy paired with
  the reliability-based truth-discovery methods: tasks are greedily handed
  to the most reliable users, with shorter tasks prioritised so those users
  can finish as many tasks as possible.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation.base import AllocationProblem, Assignment
from repro.rng import ensure_rng

__all__ = ["RandomAllocator", "ReliabilityGreedyAllocator"]


class RandomAllocator:
    """Uniformly random capacity-filling allocation."""

    def __init__(self, seed=None):
        self._rng = ensure_rng(seed)

    def allocate(self, problem: AllocationProblem) -> Assignment:
        """Assign random feasible (user, task) pairs until none remain.

        Visits all pairs in random order, taking each one that still fits in
        the user's remaining capacity.  This fills capacity the same way the
        smarter allocators do, so comparisons measure *which* users answer
        which tasks rather than how much data is collected.
        """
        n_users, n_tasks = problem.n_users, problem.n_tasks
        times = problem.pair_times()
        remaining = problem.capacities.astype(float).copy()
        eligible = problem.eligible_mask()
        matrix = np.zeros((n_users, n_tasks), dtype=bool)
        order = self._rng.permutation(n_users * n_tasks)
        for flat in order:
            user, task = divmod(int(flat), n_tasks)
            if eligible[user] and times[user, task] <= remaining[user] + 1e-12:
                matrix[user, task] = True
                remaining[user] -= times[user, task]
        return Assignment(matrix=matrix)


class ReliabilityGreedyAllocator:
    """Greedy allocation by scalar user reliability.

    Tasks are visited shortest-first (the paper prioritises short tasks for
    high-reliability users so they can finish as many tasks as possible); in
    each pass every task receives one additional user — the most reliable
    user with enough remaining capacity that is not yet assigned to it.
    Passes repeat until no assignment is possible.

    The pass structure matters: if each user instead grabbed the shortest
    tasks independently, all users would pick the *same* few short tasks and
    most tasks would get no observer at all — an allocation no deployed
    system would use and one that degenerates the estimation-error metric
    (it averages over estimated tasks only).
    """

    def __init__(self, reliabilities: np.ndarray):
        reliabilities = np.asarray(reliabilities, dtype=float)
        if reliabilities.ndim != 1:
            raise ValueError("reliabilities must be a 1-D array")
        self._reliabilities = reliabilities

    def allocate(self, problem: AllocationProblem) -> Assignment:
        if self._reliabilities.shape != (problem.n_users,):
            raise ValueError("reliabilities must have one entry per user")
        n_users = problem.n_users
        times = problem.pair_times()
        remaining = problem.capacities.astype(float).copy()
        eligible = problem.eligible_mask()
        matrix = np.zeros((n_users, problem.n_tasks), dtype=bool)
        # Shortest-first by each task's mean time across users.
        task_order = np.argsort(times.mean(axis=0), kind="stable")
        # Each user's rank in the descending-reliability order; ineligible
        # users rank +inf so a masked argmin below returns exactly the user
        # a first-feasible scan down the reliability order would.
        rank = np.empty(n_users, dtype=float)
        rank[np.argsort(-self._reliabilities, kind="stable")] = np.arange(n_users)
        rank[~eligible] = np.inf
        progressed = True
        while progressed:
            progressed = False
            for task in task_order:
                feasible = (
                    ~matrix[:, task]
                    & eligible
                    & (times[:, task] <= remaining + 1e-12)
                )
                if not np.any(feasible):
                    continue
                user = int(np.argmin(np.where(feasible, rank, np.inf)))
                matrix[user, task] = True
                remaining[user] -= times[user, task]
                progressed = True
        return Assignment(matrix=matrix)
