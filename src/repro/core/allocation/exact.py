"""Exact reference solvers for small allocation instances.

Used by the test suite to audit the greedy heuristic's approximation quality:

- :func:`exhaustive_max_quality` enumerates every feasible assignment of a
  tiny instance (exponential — guarded by a size limit),
- :func:`single_user_knapsack` solves the single-user case exactly; by the
  paper's NP-hardness proof it *is* a 0/1 knapsack, so a classic dynamic
  program over a discretised capacity applies.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.core.allocation.base import AllocationProblem, Assignment, allocation_objective

__all__ = ["exhaustive_max_quality", "single_user_knapsack"]

_MAX_EXHAUSTIVE_PAIRS = 20


def exhaustive_max_quality(problem: AllocationProblem) -> "tuple[Assignment, float]":
    """Optimal assignment by brute force (instances up to ~20 pairs)."""
    n_pairs = problem.n_users * problem.n_tasks
    if n_pairs > _MAX_EXHAUSTIVE_PAIRS:
        raise ValueError(
            f"instance too large for exhaustive search ({n_pairs} pairs > {_MAX_EXHAUSTIVE_PAIRS})"
        )
    best_value = -1.0
    best_matrix = np.zeros((problem.n_users, problem.n_tasks), dtype=bool)
    for bits in product([False, True], repeat=n_pairs):
        matrix = np.array(bits, dtype=bool).reshape(problem.n_users, problem.n_tasks)
        assignment = Assignment(matrix=matrix)
        if not assignment.respects_capacities(problem):
            continue
        value = allocation_objective(problem, assignment)
        if value > best_value:
            best_value = value
            best_matrix = matrix
    return Assignment(matrix=best_matrix), best_value


def single_user_knapsack(
    values: np.ndarray,
    weights: np.ndarray,
    capacity: float,
    resolution: int = 1000,
) -> "tuple[np.ndarray, float]":
    """Exact 0/1 knapsack via dynamic programming on a discretised capacity.

    ``values[j]`` is the objective gain of assigning task *j* to the single
    user (``p_ij`` in the Eq. 15 reduction), ``weights[j]`` its processing
    time.  Weights are scaled onto an integer grid of ``resolution`` steps;
    the returned selection is exact for the discretised weights, which the
    tests account for by using grid-aligned inputs.

    Returns ``(selected_mask, total_value)``.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape or values.ndim != 1:
        raise ValueError("values and weights must be 1-D arrays of equal length")
    if np.any(weights <= 0):
        raise ValueError("weights must be positive")
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if resolution < 1:
        raise ValueError("resolution must be at least 1")

    scale = resolution / max(capacity, weights.max(), 1e-12)
    int_weights = np.maximum(1, np.round(weights * scale).astype(int))
    int_capacity = int(np.floor(capacity * scale + 1e-9))

    n = len(values)
    table = np.zeros((n + 1, int_capacity + 1), dtype=float)
    for j in range(1, n + 1):
        weight = int_weights[j - 1]
        value = values[j - 1]
        table[j, :] = table[j - 1, :]
        if weight <= int_capacity:
            candidate = table[j - 1, : int_capacity - weight + 1] + value
            np.maximum(table[j, weight:], candidate, out=table[j, weight:])

    selected = np.zeros(n, dtype=bool)
    remaining = int_capacity
    for j in range(n, 0, -1):
        if table[j, remaining] != table[j - 1, remaining]:
            selected[j - 1] = True
            remaining -= int_weights[j - 1]
    return selected, float(table[n, int_capacity])
