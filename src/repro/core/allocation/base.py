"""Allocation problem instances, assignments, and the max-quality objective.

The max-quality optimisation problem (Eq. 14)::

    max   sum_j [ 1 - prod_i (1 - p_ij)^{s_ij} ]
    s.t.  sum_j t_j * s_ij <= T_i   for every user i
          s_ij in {0, 1}

with ``p_ij = Phi(eps * u_ij) - Phi(-eps * u_ij)`` (Eq. 11), the probability
that user *i*'s observation lands within ``eps`` base numbers of the truth.

A note on the capacity constraint: the paper writes it strictly
(``< T_i``, Eq. 13) but Algorithm 1's efficiency rule assigns whenever
``t_j <= T'_i`` (Definition 1), which fills capacity exactly.  We follow the
algorithm (non-strict ``<=``); with continuous random processing times the
two differ with probability zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.normal import symmetric_tail_probability

__all__ = [
    "DEFAULT_EPSILON",
    "AllocationProblem",
    "Assignment",
    "accuracy_probabilities",
    "allocation_objective",
]

#: The paper sets the accuracy threshold eps to 0.1.
DEFAULT_EPSILON = 0.1


def accuracy_probabilities(expertise: np.ndarray, epsilon: float = DEFAULT_EPSILON) -> np.ndarray:
    """Eq. 11: ``p_ij = Phi(eps * u_ij) - Phi(-eps * u_ij)`` element-wise."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    expertise = np.asarray(expertise, dtype=float)
    if np.any(expertise < 0):
        raise ValueError("expertise must be non-negative")
    return symmetric_tail_probability(epsilon * expertise)


def expertise_for_accuracy(accuracy: np.ndarray, epsilon: float = DEFAULT_EPSILON) -> np.ndarray:
    """Inverse of :func:`accuracy_probabilities`.

    Maps a direct per-pair success probability (e.g. a categorical model's
    accuracy) to the expertise value whose Eq. 11 probability equals it, so
    probability-native models can drive the max-quality allocator unchanged.
    Accuracies are clipped marginally inside (0, 1) to keep the quantile
    finite.
    """
    from repro.stats.normal import standard_normal_quantile

    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    accuracy = np.clip(np.asarray(accuracy, dtype=float), 1e-9, 1.0 - 1e-9)
    return standard_normal_quantile((1.0 + accuracy) / 2.0) / epsilon


@dataclass(frozen=True)
class AllocationProblem:
    """One time step's allocation instance.

    Attributes
    ----------
    expertise:
        ``(n_users, n_tasks)`` matrix ``u_{i, d_j}`` — each user's expertise
        in each task's domain.
    processing_times:
        ``t_j`` per task (the paper's model), **or** a ``(n_users,
        n_tasks)`` matrix ``t_ij`` of per-pair times — the spatial
        extension, where a task costs each user its sensing time plus the
        travel to the task's location.
    capacities:
        ``T_i`` per user.
    epsilon:
        Accuracy threshold of Eq. 11.
    costs:
        ``c_j`` per task — the payment for recruiting one user for task j
        (used by min-cost; defaults to one unit per the paper's Section
        6.4.3 setting).
    eligible:
        Optional per-user boolean mask; ``False`` users (e.g. quarantined
        by the reputation tracker) receive no assignments from any
        allocator.  ``None`` means everyone is eligible.  An explicit
        boolean mask — not infinite processing times — because
        ``False * inf`` is NaN under IEEE rules and would silently poison
        workload arithmetic.
    """

    expertise: np.ndarray
    processing_times: np.ndarray
    capacities: np.ndarray
    epsilon: float = DEFAULT_EPSILON
    costs: "np.ndarray | None" = None
    eligible: "np.ndarray | None" = None

    def __post_init__(self):
        expertise = np.asarray(self.expertise, dtype=float)
        times = np.asarray(self.processing_times, dtype=float)
        capacities = np.asarray(self.capacities, dtype=float)
        if expertise.ndim != 2:
            raise ValueError("expertise must be a (n_users, n_tasks) matrix")
        n_users, n_tasks = expertise.shape
        if times.shape not in ((n_tasks,), (n_users, n_tasks)):
            raise ValueError(
                "processing_times must have one entry per task or be a (n_users, n_tasks) matrix"
            )
        if capacities.shape != (n_users,):
            raise ValueError("capacities must have one entry per user")
        if np.any(times <= 0):
            raise ValueError("processing times must be positive")
        if np.any(capacities < 0):
            raise ValueError("capacities must be non-negative")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        costs = self.costs
        if costs is None:
            costs = np.ones(n_tasks, dtype=float)
        else:
            costs = np.asarray(costs, dtype=float)
            if costs.shape != (n_tasks,):
                raise ValueError("costs must have one entry per task")
            if np.any(costs < 0):
                raise ValueError("costs must be non-negative")
        eligible = self.eligible
        if eligible is not None:
            eligible = np.asarray(eligible, dtype=bool)
            if eligible.shape != (n_users,):
                raise ValueError("eligible must have one entry per user")
            if not np.any(eligible):
                raise ValueError("at least one user must be eligible")
        object.__setattr__(self, "expertise", expertise)
        object.__setattr__(self, "processing_times", times)
        object.__setattr__(self, "capacities", capacities)
        object.__setattr__(self, "costs", costs)
        object.__setattr__(self, "eligible", eligible)

    @property
    def n_users(self) -> int:
        return self.expertise.shape[0]

    @property
    def n_tasks(self) -> int:
        return self.expertise.shape[1]

    @property
    def has_pair_times(self) -> bool:
        """True when processing times are per (user, task) pair."""
        return self.processing_times.ndim == 2

    def pair_times(self) -> np.ndarray:
        """Processing times as a ``(n_users, n_tasks)`` matrix.

        Broadcasts the paper's per-task ``t_j`` across users; the spatial
        extension's ``t_ij`` passes through unchanged.
        """
        if self.has_pair_times:
            return self.processing_times
        return np.broadcast_to(self.processing_times[None, :], (self.n_users, self.n_tasks))

    def eligible_mask(self) -> np.ndarray:
        """Per-user eligibility as a concrete boolean array (all-True default)."""
        if self.eligible is None:
            return np.ones(self.n_users, dtype=bool)
        return self.eligible

    def accuracy_matrix(self) -> np.ndarray:
        """The ``p_ij`` matrix of Eq. 11."""
        return accuracy_probabilities(self.expertise, self.epsilon)


@dataclass
class Assignment:
    """A boolean ``s_ij`` matrix with bookkeeping helpers."""

    matrix: np.ndarray

    def __post_init__(self):
        matrix = np.asarray(self.matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("assignment must be a 2-D boolean matrix")
        self.matrix = matrix

    @classmethod
    def empty(cls, n_users: int, n_tasks: int) -> "Assignment":
        return cls(matrix=np.zeros((n_users, n_tasks), dtype=bool))

    @property
    def n_users(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_tasks(self) -> int:
        return self.matrix.shape[1]

    @property
    def pair_count(self) -> int:
        return int(self.matrix.sum())

    def pairs(self) -> list:
        """Assigned ``(user, task)`` pairs."""
        users, tasks = np.nonzero(self.matrix)
        return list(zip(users.tolist(), tasks.tolist()))

    def users_of_task(self, task: int) -> np.ndarray:
        return np.flatnonzero(self.matrix[:, task])

    def tasks_of_user(self, user: int) -> np.ndarray:
        return np.flatnonzero(self.matrix[user, :])

    def workloads(self, processing_times: np.ndarray) -> np.ndarray:
        """Total assigned processing time per user.

        Accepts the paper's per-task vector or the spatial extension's
        per-pair matrix.
        """
        processing_times = np.asarray(processing_times, dtype=float)
        if processing_times.ndim == 2:
            return (self.matrix * processing_times).sum(axis=1)
        return self.matrix @ processing_times

    def respects_capacities(self, problem: AllocationProblem) -> bool:
        return bool(np.all(self.workloads(problem.processing_times) <= problem.capacities + 1e-9))

    def total_cost(self, costs: np.ndarray) -> float:
        """Eq. 18's recruiting cost ``sum_ij s_ij * c_j``."""
        return float(self.matrix.sum(axis=0) @ np.asarray(costs, dtype=float))

    def union(self, other: "Assignment") -> "Assignment":
        if other.matrix.shape != self.matrix.shape:
            raise ValueError("assignments have different shapes")
        return Assignment(matrix=self.matrix | other.matrix)


def allocation_objective(
    problem: AllocationProblem,
    assignment: Assignment,
    accuracy: "np.ndarray | None" = None,
) -> float:
    """Eq. 12: ``sum_j [1 - prod_{i assigned} (1 - p_ij)]``.

    ``accuracy`` accepts a precomputed ``problem.accuracy_matrix()`` so
    callers scoring several assignments against one problem (the greedy
    passes, the exact solver's enumeration) pay for the ``erf`` once.
    """
    if assignment.matrix.shape != (problem.n_users, problem.n_tasks):
        raise ValueError("assignment shape does not match the problem")
    p = problem.accuracy_matrix() if accuracy is None else accuracy
    # Sparse evaluation: multiply only the assigned pairs into each task's
    # miss product instead of materialising the dense ``np.where`` matrix.
    # np.nonzero yields pairs in ascending-user order — the same sequential
    # order ``np.prod(..., axis=0)`` multiplies in — and the skipped
    # factors are exactly 1.0, so the result is bit-identical to the dense
    # product.
    users, tasks = np.nonzero(assignment.matrix)
    miss = np.ones(problem.n_tasks, dtype=float)
    np.multiply.at(miss, tasks, 1.0 - p[users, tasks])
    return float(np.sum(1.0 - miss))
