"""Expertise-aware task allocation (Section 5).

- :mod:`repro.core.allocation.base` — the allocation problem instance, the
  assignment container, and the max-quality objective (Eqs. 10-14),
- :mod:`repro.core.allocation.max_quality` — the greedy efficiency heuristic
  (Algorithm 1) plus the cardinality-greedy extra pass that restores the
  1/2-approximation guarantee,
- :mod:`repro.core.allocation.lazy_greedy` — the CELF priority-queue kernel
  the greedy runs on: lazy re-evaluation with staleness epochs,
  bit-identical picks to the exhaustive scan,
- :mod:`repro.core.allocation.min_cost` — the iterative min-cost allocator
  (Algorithm 2) with the Fisher-information quality check,
- :mod:`repro.core.allocation.exact` — exhaustive and dynamic-programming
  reference solvers for small instances (tests and approximation audits),
- :mod:`repro.core.allocation.baselines` — the random allocator (warm-up and
  the "Baseline" comparison) and the reliability-greedy allocator used by the
  Hubs-and-Authorities / Average-Log / TruthFinder comparisons.
"""

from repro.core.allocation.base import (
    AllocationProblem,
    Assignment,
    accuracy_probabilities,
    allocation_objective,
)
from repro.core.allocation.baselines import RandomAllocator, ReliabilityGreedyAllocator
from repro.core.allocation.exact import exhaustive_max_quality, single_user_knapsack
from repro.core.allocation.lazy_greedy import GreedyOutcome, GreedyStats, lazy_greedy_allocate
from repro.core.allocation.max_quality import MaxQualityAllocator, greedy_allocate
from repro.core.allocation.min_cost import MinCostAllocator, MinCostOutcome, MinCostRound

__all__ = [
    "AllocationProblem",
    "Assignment",
    "GreedyOutcome",
    "GreedyStats",
    "MaxQualityAllocator",
    "MinCostAllocator",
    "MinCostOutcome",
    "MinCostRound",
    "RandomAllocator",
    "ReliabilityGreedyAllocator",
    "accuracy_probabilities",
    "allocation_objective",
    "exhaustive_max_quality",
    "greedy_allocate",
    "lazy_greedy_allocate",
    "single_user_knapsack",
]
