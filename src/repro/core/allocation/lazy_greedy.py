"""Lazy-greedy (CELF) evaluation of Algorithm 1's efficiency greedy.

The eager greedy loop re-evaluates, after every pick, *every* task whose
cached best user just lost capacity, then takes a full ``np.argmax`` over
all tasks — O(n_tasks · n_users) interpreter-level work per pick when one
strong user is the cached best for a whole expertise domain.  But the
Eq. 12 objective is monotone submodular: a task's coverage miss
``prod (1 - p_ij)`` only shrinks as users are added, remaining capacities
only shrink, and therefore every task's best marginal efficiency only ever
*decreases* over the run.  That monotonicity is exactly the CELF
(cost-effective lazy forward selection) precondition: a stale cached
efficiency is always an **upper bound** on the current one, so stale
entries can sit untouched in a max-heap and only the entry that surfaces
at the top ever needs re-evaluation.

The kernel keeps one heap entry per task, tagged with staleness epochs:

- ``miss_epoch[task]`` advances whenever the task's coverage changes
  (it received an assignment), and
- ``cap_epoch[user]`` advances whenever that user's remaining capacity
  shrinks.

A popped entry is *fresh* when both epochs still match what the entry was
evaluated under; every other change provably cannot alter the task's
masked argmax (a non-best user dropping out of feasibility only removes
candidates that were already dominated — ``np.argmax`` returns the first
maximum, and the cached best user is by construction the lowest-indexed
one).  A fresh top-of-heap entry is therefore the true global maximum,
and re-evaluation is a single vectorised masked-argmax over users.

**Bit-identical picks.**  Heap entries order by ``(-efficiency, task)``,
so ties in efficiency break toward the lowest task index — exactly
``np.argmax`` over the per-task efficiency array — and the per-task
re-evaluation performs the same element-wise operations in the same order
as the eager loop's ``best_for_task``, so every efficiency value is
bit-identical too.  ``tests/perf/test_allocation_equivalence.py`` fuzzes
the kernel against the frozen eager copy
(:func:`repro.perf.reference.reference_greedy_allocate`) across spatial
pair-times, eligibility masks, cost budgets, warm starts, tie-heavy
expertise and zero-capacity users.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.allocation.base import AllocationProblem, Assignment, allocation_objective

__all__ = ["GreedyStats", "GreedyOutcome", "lazy_greedy_allocate"]


@dataclass(frozen=True)
class GreedyStats:
    """Work counters of one lazy-greedy run (telemetry + CELF audits).

    ``evaluations`` counts vectorised per-task masked-argmax evaluations
    after the initial build (the build itself evaluates all ``n_tasks``
    columns in one shot); the eager reference instead re-evaluates every
    task sharing the picked user after every pick, so
    ``evaluations / picks`` staying near 2 is the laziness actually
    paying off.  ``max_refresh_delta`` is the largest ``fresh - stale``
    efficiency observed when re-evaluating a stale entry; submodularity
    guarantees it is never positive, and the CELF invariant test asserts
    exactly that.
    """

    picks: int = 0
    pops: int = 0
    evaluations: int = 0
    max_refresh_delta: float = float("-inf")

    def merged(self, other: "GreedyStats | None") -> "GreedyStats":
        """Combine counters across greedy passes (extra pass, min-cost rounds)."""
        if other is None:
            return self
        return GreedyStats(
            picks=self.picks + other.picks,
            pops=self.pops + other.pops,
            evaluations=self.evaluations + other.evaluations,
            max_refresh_delta=max(self.max_refresh_delta, other.max_refresh_delta),
        )


@dataclass(frozen=True)
class GreedyOutcome:
    """Result of one greedy pass."""

    assignment: Assignment
    added_pairs: tuple
    objective: float
    spent_cost: float
    #: Lazy-kernel work counters (None for outcomes built elsewhere).
    stats: "GreedyStats | None" = None


def lazy_greedy_allocate(
    problem: AllocationProblem,
    initial: "Assignment | None" = None,
    divide_by_time: bool = True,
    cost_budget: "float | None" = None,
    active_tasks: "np.ndarray | None" = None,
    accuracy: "np.ndarray | None" = None,
    pair_times: "np.ndarray | None" = None,
) -> GreedyOutcome:
    """Run the Algorithm 1 greedy loop via the CELF priority queue.

    Parameters mirror the public
    :func:`~repro.core.allocation.max_quality.greedy_allocate`;
    ``accuracy`` and ``pair_times`` accept the precomputed Eq. 11 matrix
    and the broadcast processing times so callers that run several passes
    over one problem (extra pass, min-cost rounds) pay for them once.
    """
    n_users, n_tasks = problem.n_users, problem.n_tasks
    p = problem.accuracy_matrix() if accuracy is None else accuracy
    times = problem.pair_times() if pair_times is None else pair_times
    costs = problem.costs
    eligible = problem.eligible_mask()

    if initial is None:
        assigned = np.zeros((n_users, n_tasks), dtype=bool)
    else:
        if initial.matrix.shape != (n_users, n_tasks):
            raise ValueError("initial assignment shape does not match the problem")
        assigned = initial.matrix.copy()
    remaining = problem.capacities - (assigned * times).sum(axis=1)
    if np.any(remaining < -1e-9):
        raise ValueError("initial assignment already exceeds capacities")
    miss = np.prod(np.where(assigned, 1.0 - p, 1.0), axis=0)

    if active_tasks is None:
        active = np.ones(n_tasks, dtype=bool)
    else:
        active = np.asarray(active_tasks, dtype=bool)
        if active.shape != (n_tasks,):
            raise ValueError("active_tasks must have one flag per task")
        active = active.copy()

    spent = 0.0
    budget_blocked = np.zeros(n_tasks, dtype=bool)

    # Column-access layout for the per-task re-evaluations: Fortran order
    # makes ``[:, task]`` slices contiguous (a broadcast per-task time row —
    # stride 0 — is already free to slice), ``avail`` folds the fixed
    # eligibility into the assignment complement, and ``remaining_eps``
    # keeps ``remaining + 1e-12`` maintained incrementally.  Scratch buffers
    # avoid per-call allocations.  All of it is value-identical to the
    # frozen eager loop: boolean algebra is exact, and ``x * True`` /
    # ``x * False`` equal ``np.where``'s ``x`` / ``0.0`` for these finite
    # non-negative gains.
    p_f = np.asfortranarray(p)
    times_f = times if times.ndim == 2 and times.strides[0] == 0 else np.asfortranarray(times)
    avail = np.asfortranarray(~assigned & eligible[:, None])
    remaining_eps = remaining + 1e-12
    feas_buf = np.empty(n_users, dtype=bool)
    gain_buf = np.empty(n_users, dtype=float)

    def evaluate(task: int) -> "tuple[float, int]":
        # Same operations (element-wise, in the same order) as the frozen
        # eager loop's best_for_task — efficiencies must stay bit-identical.
        if not active[task] or budget_blocked[task]:
            return (0.0, -1)
        feasible = np.less_equal(times_f[:, task], remaining_eps, out=feas_buf)
        feasible &= avail[:, task]
        if not feasible.any():
            return (0.0, -1)
        gain = np.multiply(p_f[:, task], miss[task], out=gain_buf)
        if divide_by_time:
            gain /= times_f[:, task]
        np.multiply(gain, feasible, out=gain)
        user = int(np.argmax(gain))
        return (float(gain[user]), user)

    # Initial build: one vectorised masked-argmax over the whole matrix.
    # Element-wise, these are the same operations evaluate() performs per
    # column, so the initial efficiencies are bit-identical as well.
    feasible = (~assigned) & eligible[:, None] & (times <= remaining[:, None] + 1e-12)
    gain = p * miss[None, :]
    if divide_by_time:
        gain = gain / times
    gain = np.where(feasible, gain, 0.0)
    build_user = np.argmax(gain, axis=0)
    build_eff = gain[build_user, np.arange(n_tasks)]

    # Staleness epochs: a heap entry is current iff the task's coverage and
    # its cached best user's capacity are both unchanged since evaluation.
    # Plain lists, not ndarrays — the pop loop reads these one scalar at a
    # time, where list indexing is several times cheaper.
    miss_epoch = [0] * n_tasks
    cap_epoch = [0] * n_users
    cached_user = [-1] * n_tasks
    entry_miss_epoch = [0] * n_tasks
    entry_cap_epoch = [0] * n_tasks

    heap: list = []
    for task in np.flatnonzero(active & (build_eff > 0.0)).tolist():
        cached_user[task] = int(build_user[task])
        heap.append((-build_eff[task], task))
    heapq.heapify(heap)

    picks = 0
    pops = 0
    evaluations = 0
    max_refresh_delta = float("-inf")

    def refresh(task: int, stale_value: float) -> None:
        """Re-evaluate a stale entry and re-insert it if still promising."""
        nonlocal evaluations, max_refresh_delta
        value, user = evaluate(task)
        evaluations += 1
        delta = value - stale_value
        if delta > max_refresh_delta:
            max_refresh_delta = delta
        if value > 0.0:
            cached_user[task] = user
            entry_miss_epoch[task] = miss_epoch[task]
            entry_cap_epoch[task] = cap_epoch[user]
            heapq.heappush(heap, (-value, task))

    added: list = []
    while heap:
        neg_value, task = heapq.heappop(heap)
        pops += 1
        user = cached_user[task]
        if (
            entry_miss_epoch[task] != miss_epoch[task]
            or entry_cap_epoch[task] != cap_epoch[user]
        ):
            refresh(task, -neg_value)
            continue
        # Fresh top of heap == the eager loop's np.argmax winner.
        if cost_budget is not None and spent + costs[task] > cost_budget + 1e-12:
            # Cost only grows, so this task can never be afforded again.
            budget_blocked[task] = True
            continue
        assigned[user, task] = True
        avail[user, task] = False
        remaining[user] -= times_f[user, task]
        remaining_eps[user] = remaining[user] + 1e-12
        cap_epoch[user] += 1
        miss[task] *= 1.0 - p_f[user, task]
        miss_epoch[task] += 1
        spent += costs[task]
        added.append((user, task))
        picks += 1
        # The picked task is stale by construction; re-evaluating it now
        # saves the pop-and-refresh round trip it would otherwise cost.
        value, next_user = evaluate(task)
        evaluations += 1
        if value > 0.0:
            cached_user[task] = next_user
            entry_miss_epoch[task] = miss_epoch[task]
            entry_cap_epoch[task] = cap_epoch[next_user]
            heapq.heappush(heap, (-value, task))

    assignment = Assignment(matrix=assigned)
    return GreedyOutcome(
        assignment=assignment,
        added_pairs=tuple(added),
        objective=allocation_objective(problem, assignment, accuracy=p),
        spent_cost=spent,
        stats=GreedyStats(
            picks=picks,
            pops=pops,
            evaluations=evaluations,
            max_refresh_delta=max_refresh_delta,
        ),
    )
