"""Exploration-aware max-quality allocation (an extension beyond the paper).

The Algorithm 1 greedy is purely exploitative: once a user looks expert in a
domain, it receives that domain's tasks forever, and users whose expertise
was never observed (or was unluckily under-estimated early) may never get
another chance.  On datasets with strong specialisation (SFV) this shows up
as good estimation error but poor *specialist identification* — the system
settles for the first adequate users it finds.

:class:`ExploringMaxQualityAllocator` is the classic epsilon-greedy fix:
a fraction of every user's capacity is first filled with uniformly random
feasible assignments (exploration), and the remaining capacity is allocated
by the standard greedy, which treats the exploration pairs as already
assigned (their coverage counts toward the objective).  At
``exploration_rate = 0`` it reduces exactly to
:class:`~repro.core.allocation.max_quality.MaxQualityAllocator`.
"""

from __future__ import annotations

from repro.core.allocation.base import AllocationProblem, Assignment
from repro.core.allocation.max_quality import greedy_allocate
from repro.rng import ensure_rng

__all__ = ["ExploringMaxQualityAllocator"]


class ExploringMaxQualityAllocator:
    """Epsilon-greedy exploration on top of the Algorithm 1 greedy."""

    def __init__(self, exploration_rate: float = 0.1, extra_pass: bool = True, seed=None):
        if not 0.0 <= exploration_rate <= 1.0:
            raise ValueError("exploration_rate must lie in [0, 1]")
        self._rate = float(exploration_rate)
        self._extra_pass = bool(extra_pass)
        self._rng = ensure_rng(seed)
        #: Merged lazy-kernel counters of the most recent allocate() call.
        self.last_stats = None

    @property
    def exploration_rate(self) -> float:
        return self._rate

    def _explore(self, problem: AllocationProblem) -> Assignment:
        """Fill up to ``rate * T_i`` of each user's capacity at random."""
        assignment = Assignment.empty(problem.n_users, problem.n_tasks)
        if self._rate == 0.0:
            return assignment
        budget = self._rate * problem.capacities
        times = problem.pair_times()
        eligible = problem.eligible_mask()
        order = self._rng.permutation(problem.n_users * problem.n_tasks)
        for flat in order:
            user, task = divmod(int(flat), problem.n_tasks)
            if (
                eligible[user]
                and not assignment.matrix[user, task]
                and times[user, task] <= budget[user] + 1e-12
            ):
                assignment.matrix[user, task] = True
                budget[user] -= times[user, task]
        return assignment

    def allocate(self, problem: AllocationProblem) -> Assignment:
        exploration = self._explore(problem)
        accuracy = problem.accuracy_matrix()
        efficiency = greedy_allocate(
            problem, initial=exploration, divide_by_time=True, accuracy=accuracy
        )
        if not self._extra_pass:
            self.last_stats = efficiency.stats
            return efficiency.assignment
        cardinality = greedy_allocate(
            problem, initial=exploration, divide_by_time=False, accuracy=accuracy
        )
        self.last_stats = (
            efficiency.stats.merged(cardinality.stats)
            if efficiency.stats is not None
            else cardinality.stats
        )
        if cardinality.objective > efficiency.objective:
            return cardinality.assignment
        return efficiency.assignment
