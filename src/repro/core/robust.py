"""Robust variants of the Section 4.1/4.2 truth analysis.

The paper's MLE assumes every observation is an honest draw from
``N(mu_j, (sigma_j / u_i^{d_j})^2)``.  A Byzantine minority breaks that
assumption: a single colluding group reporting ``truth + 3 sigma`` drags the
weighted means of Eq. 5, which corrupts the Eq. 6 expertise estimates, which
— through the closed loop of Eqs. 7-9 — poisons every subsequent day's
allocation.  This module supplies the estimation-side defences:

- **Huber weighting** — each observation's likelihood weight
  ``w_ij u_ij^2`` is multiplied by ``min(1, delta / |z_ij|)`` where
  ``z_ij = (x_ij - mu_j) u_ij / sigma_j`` is the model's standardized
  residual.  Inliers are untouched; gross outliers get weight ``~1/|z|``
  instead of dominating quadratically.
- **Trimming** — per task, the ``trim_fraction`` observations with the
  largest ``|z_ij|`` are dropped outright (only when enough observations
  remain for the truth to stay identified).
- **Iteration damping** — the coordinate iteration moves truths only a
  ``damping`` fraction of the way to the new iterate, which breaks the
  two-cycle oscillations adversarial weight configurations can induce.
- **Weighted-median fallback** — when the damped iteration still fails to
  converge, :func:`weighted_median_truths` produces a guaranteed-finite,
  iteration-free estimate (expertise-weighted median per task, MAD-based
  sigma), so a diverging MLE degrades instead of hanging or returning junk.

Everything is opt-in behind :class:`RobustConfig`; with ``method="none"``
and ``damping=1`` the estimators are bit-identical to the plain paper MLE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RobustConfig",
    "huber_weights",
    "trimmed_weights",
    "robust_weights",
    "weighted_median",
    "weighted_median_truths",
]

#: MAD-to-standard-deviation consistency factor for normal data.
_MAD_SCALE = 1.4826


@dataclass(frozen=True)
class RobustConfig:
    """Knobs for the robust truth-analysis variants.

    Attributes
    ----------
    method:
        ``"huber"``, ``"trimmed"``, or ``"none"`` (weights identically 1 —
        useful to get damping/fallback without reweighting).
    huber_delta:
        Standardized-residual scale beyond which Huber down-weighting kicks
        in.  2.5 leaves ~99% of honest observations at full weight.
    trim_fraction:
        Fraction of each task's observations (largest ``|z|`` first)
        dropped by the trimmed estimator.
    min_observations:
        Trimming needs context: tasks with fewer observations than this
        keep all of them (a 2-observation task cannot name the bad one).
    damping:
        Truth-update step size in ``(0, 1]``; 1 is the paper's undamped
        iteration.
    fallback:
        When True, a non-converged iteration whose final relative change
        still exceeds ``fallback_delta`` (or produced non-finite truths)
        is replaced by the weighted-median estimate.
    fallback_delta:
        Relative-change level above which a non-converged run counts as
        *diverged* rather than merely slow.
    """

    method: str = "huber"
    huber_delta: float = 2.5
    trim_fraction: float = 0.1
    min_observations: int = 4
    damping: float = 1.0
    fallback: bool = True
    fallback_delta: float = 0.5

    def __post_init__(self):
        if self.method not in ("huber", "trimmed", "none"):
            raise ValueError("method must be 'huber', 'trimmed' or 'none'")
        if self.huber_delta <= 0.0:
            raise ValueError("huber_delta must be positive")
        if not 0.0 <= self.trim_fraction < 1.0:
            raise ValueError("trim_fraction must lie in [0, 1)")
        if self.min_observations < 3:
            raise ValueError("min_observations must be at least 3")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must lie in (0, 1]")
        if self.fallback_delta <= 0.0:
            raise ValueError("fallback_delta must be positive")


def huber_weights(z: np.ndarray, delta: float) -> np.ndarray:
    """Huber's weight function ``min(1, delta / |z|)`` (1 at ``z = 0``)."""
    z = np.abs(np.asarray(z, dtype=float))
    with np.errstate(divide="ignore", invalid="ignore"):
        weights = np.where(z > delta, delta / np.where(z > 0, z, 1.0), 1.0)
    return np.where(np.isfinite(weights), weights, 0.0)


def trimmed_weights(
    z: np.ndarray, task_of: np.ndarray, n_tasks: int, trim_fraction: float, min_observations: int
) -> np.ndarray:
    """0/1 weights dropping each task's largest-``|z|`` fraction.

    ``z`` and ``task_of`` are aligned per-observation arrays (coordinate
    form).  At most ``count - 2`` observations are ever dropped per task so
    the truth and sigma stay identified; tasks with fewer than
    ``min_observations`` observations are left untouched.
    """
    z = np.abs(np.asarray(z, dtype=float))
    weights = np.ones(z.shape[0], dtype=float)
    if trim_fraction <= 0.0 or z.size == 0:
        return weights
    counts = np.bincount(task_of, minlength=n_tasks)
    for task in np.flatnonzero(counts >= min_observations):
        members = np.flatnonzero(task_of == task)
        drop = min(int(np.ceil(trim_fraction * members.size)), members.size - 2)
        if drop <= 0:
            continue
        # Stable argsort keeps ties deterministic across runs.
        order = members[np.argsort(z[members], kind="stable")]
        weights[order[-drop:]] = 0.0
    return weights


def robust_weights(
    z: np.ndarray,
    task_of: np.ndarray,
    n_tasks: int,
    config: RobustConfig,
) -> np.ndarray:
    """Per-observation robustness weights in ``[0, 1]`` for ``config``."""
    if config.method == "huber":
        return huber_weights(z, config.huber_delta)
    if config.method == "trimmed":
        return trimmed_weights(
            z, task_of, n_tasks, config.trim_fraction, config.min_observations
        )
    return np.ones(np.asarray(z).shape[0], dtype=float)


def weighted_median(values: np.ndarray, weights: np.ndarray) -> float:
    """The weighted median (lower weighted median for even splits).

    Guaranteed finite for any non-empty sample with positive total weight;
    this is what makes it a safe divergence fallback.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.size == 0:
        return float("nan")
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = np.maximum(weights[order], 0.0)
    total = weights.sum()
    if total <= 0.0:
        return float(np.median(values))
    cumulative = np.cumsum(weights)
    index = int(np.searchsorted(cumulative, 0.5 * total))
    return float(values[min(index, values.size - 1)])


def weighted_median_truths(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    task_expertise_per_obs: np.ndarray,
    n_tasks: int,
    sigma_floor: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """Guaranteed-termination truth/sigma estimates in coordinate form.

    Truth: the expertise²-weighted median of each task's observations.
    Sigma: ``1.4826 x`` the weighted median absolute deviation (floored),
    the robust analogue of Eq. 5's variance line.  Unobserved tasks get NaN
    truth and the sigma floor, matching the iterative estimator's contract.
    """
    truths = np.full(n_tasks, np.nan)
    sigmas = np.full(n_tasks, sigma_floor)
    weights = np.asarray(task_expertise_per_obs, dtype=float) ** 2
    for task in np.unique(cols):
        members = np.flatnonzero(cols == task)
        truth = weighted_median(values[members], weights[members])
        truths[task] = truth
        deviation = np.abs(values[members] - truth)
        mad = weighted_median(deviation, weights[members])
        sigmas[task] = max(_MAD_SCALE * mad, sigma_floor)
    return truths, sigmas
