"""Normal-distribution primitives.

The paper's observation model assumes user *i* observes task *j* as a draw
from ``N(mu_j, (sigma_j / u_ij)^2)`` (Section 2.4).  The allocation objective
needs ``Phi(eps * u) - Phi(-eps * u)`` (Eq. 11) and the min-cost quality check
needs standard-normal quantiles ``Z_{alpha/2}`` (Eq. 24).  These helpers are
thin, vectorised wrappers around :func:`scipy.special.erf` and
:func:`scipy.special.erfinv` so the rest of the library never touches scipy
distributions directly.
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = [
    "standard_normal_pdf",
    "standard_normal_cdf",
    "standard_normal_quantile",
    "normal_pdf",
    "normal_cdf",
    "normal_quantile",
    "symmetric_tail_probability",
]

_SQRT2 = float(np.sqrt(2.0))
_SQRT_2PI = float(np.sqrt(2.0 * np.pi))


def standard_normal_pdf(x):
    """Density of N(0, 1) at ``x`` (scalar or array)."""
    x = np.asarray(x, dtype=float)
    return np.exp(-0.5 * x * x) / _SQRT_2PI


def standard_normal_cdf(x):
    """``Phi(x)`` for scalar or array ``x``."""
    x = np.asarray(x, dtype=float)
    return 0.5 * (1.0 + special.erf(x / _SQRT2))


def standard_normal_quantile(p):
    """Inverse of ``Phi`` — the ``Z_p`` used in Eq. 24's confidence interval."""
    p = np.asarray(p, dtype=float)
    if np.any((p <= 0.0) | (p >= 1.0)):
        raise ValueError("quantile probability must lie strictly in (0, 1)")
    return _SQRT2 * special.erfinv(2.0 * p - 1.0)


def normal_pdf(x, mean: float, std: float):
    """Density of ``N(mean, std^2)`` at ``x``."""
    if std <= 0:
        raise ValueError("std must be positive")
    x = np.asarray(x, dtype=float)
    z = (x - mean) / std
    return standard_normal_pdf(z) / std


def normal_cdf(x, mean: float, std: float):
    """CDF of ``N(mean, std^2)`` at ``x``."""
    if std <= 0:
        raise ValueError("std must be positive")
    x = np.asarray(x, dtype=float)
    return standard_normal_cdf((x - mean) / std)


def normal_quantile(p, mean: float, std: float):
    """Quantile of ``N(mean, std^2)``."""
    if std <= 0:
        raise ValueError("std must be positive")
    return mean + std * standard_normal_quantile(p)


def symmetric_tail_probability(half_width):
    """``P(|Z| < half_width) = Phi(w) - Phi(-w)`` for standard normal Z.

    This is exactly the accuracy probability of Eq. 11 with
    ``half_width = eps * u_ij``; it is the building block of the max-quality
    objective.  Vectorised over ``half_width``.
    """
    w = np.asarray(half_width, dtype=float)
    if np.any(w < 0):
        raise ValueError("half_width must be non-negative")
    return special.erf(w / _SQRT2)
