"""Fisher-information confidence intervals for the MLE truth estimate.

Section 5.2.2 of the paper evaluates data quality probabilistically: the MLE
estimator ``mu_hat_j`` is asymptotically normal with variance approximated by
the inverse Fisher information (Eq. 23)::

    var(mu_hat_j) ~= sigma_j^2 / sum_i s_ij * u_ij^2

so the ``1 - alpha`` confidence interval (Eq. 24) is::

    mu_hat_j +- Z_{alpha/2} * sigma_j / sqrt(sum_i s_ij * u_ij^2)

Algorithm 2 accepts a task once this interval is no wider than
``2 * eps_bar * sigma_j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.normal import standard_normal_quantile

__all__ = [
    "ConfidenceInterval",
    "truth_fisher_information",
    "mle_truth_confidence_interval",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around an estimate."""

    center: float
    half_width: float
    confidence: float

    @property
    def lower(self) -> float:
        return self.center - self.half_width

    @property
    def upper(self) -> float:
        return self.center + self.half_width

    @property
    def width(self) -> float:
        return 2.0 * self.half_width

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def satisfies_quality(self, sigma: float, error_limit: float) -> bool:
        """Eq. 21's acceptance test: interval fits inside ``+- error_limit * sigma``.

        Equivalently the interval width must not exceed ``2 * error_limit *
        sigma`` (the Algorithm 2 line-13 check).
        """
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if error_limit <= 0:
            raise ValueError("error_limit must be positive")
        return self.width <= 2.0 * error_limit * sigma


def truth_fisher_information(expertise: Sequence[float], sigma: float) -> float:
    """Fisher information ``I(mu_j) = sum_i u_ij^2 / sigma_j^2`` (Eq. 23).

    ``expertise`` holds the expertise values ``u_ij`` of the users *selected*
    for task j (i.e. those with ``s_ij = 1``).
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    u = np.asarray(expertise, dtype=float)
    if np.any(u < 0):
        raise ValueError("expertise values must be non-negative")
    return float(np.sum(u * u)) / (sigma * sigma)


def mle_truth_confidence_interval(
    estimate: float,
    expertise: Sequence[float],
    sigma: float,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """The Eq. 24 confidence interval for the ground truth ``mu_j``.

    Returns an infinite-width interval when no informative observation has
    been collected yet (zero Fisher information) so that Algorithm 2 keeps
    recruiting users for the task.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    info = truth_fisher_information(expertise, sigma)
    if info <= 0.0:
        return ConfidenceInterval(center=estimate, half_width=float("inf"), confidence=confidence)
    alpha = 1.0 - confidence
    z = float(standard_normal_quantile(1.0 - alpha / 2.0))
    return ConfidenceInterval(center=estimate, half_width=z / np.sqrt(info), confidence=confidence)
