"""Statistics substrate used by the ETA2 reproduction.

The paper leans on a handful of classical statistical tools:

- the standard normal distribution (observation model, Eq. 11's
  ``p_ij = Phi(eps * u_ij) - Phi(-eps * u_ij)``),
- a chi-square goodness-of-fit normality test (Section 2.3 / Table 1),
- maximum-likelihood confidence intervals from the Fisher information
  (Section 5.2.2, Eqs. 22-24),
- descriptive statistics for the evaluation figures (histograms for Fig. 2,
  boxplot summaries for Fig. 7, empirical CDFs for Fig. 12).

Everything here is implemented from first principles on top of numpy/scipy
special functions so that the algorithmic content of the paper is visible in
this repository rather than hidden behind a stats package.
"""

from repro.stats.chi_square import (
    ChiSquareResult,
    chi_square_gof,
    chi_square_normality_test,
    normality_pass_rate,
)
from repro.stats.confidence import (
    ConfidenceInterval,
    mle_truth_confidence_interval,
    truth_fisher_information,
)
from repro.stats.descriptive import (
    BoxplotStats,
    Histogram,
    boxplot_stats,
    empirical_cdf,
    histogram,
)
from repro.stats.normal import (
    normal_cdf,
    normal_pdf,
    normal_quantile,
    standard_normal_cdf,
    standard_normal_pdf,
    standard_normal_quantile,
    symmetric_tail_probability,
)

__all__ = [
    "BoxplotStats",
    "ChiSquareResult",
    "ConfidenceInterval",
    "Histogram",
    "boxplot_stats",
    "chi_square_gof",
    "chi_square_normality_test",
    "empirical_cdf",
    "histogram",
    "mle_truth_confidence_interval",
    "normal_cdf",
    "normal_pdf",
    "normal_quantile",
    "normality_pass_rate",
    "standard_normal_cdf",
    "standard_normal_pdf",
    "standard_normal_quantile",
    "symmetric_tail_probability",
    "truth_fisher_information",
]
