"""Chi-square goodness-of-fit normality testing (Section 2.3, Table 1).

The paper validates the normal observation model by running a chi-square
goodness-of-fit test per task: bin the observations, compare observed bin
counts against the counts expected under a normal distribution fitted to the
sample, and compute a p-value from the chi-square distribution with
``bins - 1 - fitted_params`` degrees of freedom.  Table 1 reports the
*non-rejection rate* — the fraction of tasks whose normality hypothesis
survives at significance levels alpha in {0.5, 0.25, 0.1, 0.05}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import special

from repro.stats.normal import normal_cdf

__all__ = [
    "ChiSquareResult",
    "chi_square_sf",
    "chi_square_gof",
    "chi_square_normality_test",
    "normality_pass_rate",
]

#: Observations are pooled into this many equiprobable bins by default. Small
#: samples automatically fall back to fewer bins (see ``_bin_count``).
DEFAULT_BINS = 8

#: Two parameters (mean, std) are fitted from the sample, costing two degrees
#: of freedom on top of the usual ``bins - 1``.
_FITTED_PARAMS = 2


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square goodness-of-fit test."""

    statistic: float
    p_value: float
    dof: int

    def rejects_at(self, alpha: float) -> bool:
        """True when the null hypothesis is rejected at significance ``alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        return self.p_value < alpha


def chi_square_sf(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution (the test p-value).

    Implemented via the regularised upper incomplete gamma function
    ``Q(dof/2, x/2)`` — the textbook identity — rather than a distribution
    object, keeping the dependency surface to scipy.special.
    """
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if statistic < 0:
        raise ValueError("chi-square statistic must be non-negative")
    return float(special.gammaincc(dof / 2.0, statistic / 2.0))


def chi_square_gof(observed: Sequence[float], expected: Sequence[float], fitted_params: int = 0) -> ChiSquareResult:
    """Generic chi-square goodness-of-fit between observed and expected counts."""
    obs = np.asarray(observed, dtype=float)
    exp = np.asarray(expected, dtype=float)
    if obs.shape != exp.shape:
        raise ValueError("observed and expected must have the same shape")
    if obs.ndim != 1 or obs.size < 2:
        raise ValueError("need at least two bins")
    if np.any(exp <= 0):
        raise ValueError("expected counts must be positive")
    dof = obs.size - 1 - fitted_params
    if dof <= 0:
        raise ValueError("not enough bins for the requested fitted parameter count")
    statistic = float(np.sum((obs - exp) ** 2 / exp))
    return ChiSquareResult(statistic=statistic, p_value=chi_square_sf(statistic, dof), dof=dof)


def _bin_count(sample_size: int, requested: int) -> int:
    """Pick a bin count that leaves positive degrees of freedom.

    A common rule of thumb keeps the expected count per bin at five or more;
    we additionally need ``bins >= fitted_params + 2`` for a valid test.
    """
    by_sample = max(sample_size // 5, _FITTED_PARAMS + 2)
    return int(min(requested, by_sample))


def chi_square_normality_test(
    sample: Sequence[float],
    bins: int = DEFAULT_BINS,
    subtract_fitted: bool = True,
) -> ChiSquareResult:
    """Chi-square normality test for one task's observation sample.

    The sample's mean and standard deviation are fitted, bin edges are placed
    at equiprobable quantiles of the fitted normal, and the observed bin
    counts are tested against the uniform expected counts.  Raises
    ``ValueError`` for degenerate samples (too small, or zero variance) —
    callers that sweep over tasks should catch and count those separately.

    ``subtract_fitted`` controls the degrees of freedom: the statistically
    correct test uses ``bins - 3`` (two parameters were fitted); the common
    applied convention — and, judging by its non-rejection rates far above
    the nominal level at alpha = 0.5, the paper's — uses ``bins - 1``.
    Table 1's experiment passes ``subtract_fitted=False`` to match.
    """
    x = np.asarray(sample, dtype=float)
    if x.ndim != 1:
        raise ValueError("sample must be one-dimensional")
    if x.size < (_FITTED_PARAMS + 2) * 2:
        raise ValueError("sample too small for a chi-square normality test")
    mean = float(np.mean(x))
    std = float(np.std(x, ddof=1))
    if std <= 0 or not np.isfinite(std):
        raise ValueError("sample has zero variance; normality test undefined")

    k = _bin_count(x.size, bins)
    # Equiprobable interior edges under the fitted normal; outer edges open.
    probs = np.arange(1, k) / k
    edges = mean + std * np.sqrt(2.0) * special.erfinv(2.0 * probs - 1.0)
    counts = np.zeros(k, dtype=float)
    idx = np.searchsorted(edges, x, side="right")
    for i in idx:
        counts[i] += 1.0
    expected = np.full(k, x.size / k, dtype=float)
    # Cross-check the binning against the fitted CDF mass (should be 1/k each).
    _assert_equiprobable(edges, mean, std, k)
    fitted = _FITTED_PARAMS if subtract_fitted else 0
    return chi_square_gof(counts, expected, fitted_params=fitted)


def _assert_equiprobable(edges: np.ndarray, mean: float, std: float, k: int) -> None:
    cdf = normal_cdf(edges, mean, std)
    full = np.concatenate(([0.0], cdf, [1.0]))
    mass = np.diff(full)
    if not np.allclose(mass, 1.0 / k, atol=1e-8):
        raise AssertionError("internal error: bins are not equiprobable")


def normality_pass_rate(
    samples: Iterable[Sequence[float]],
    alpha: float,
    bins: int = DEFAULT_BINS,
    subtract_fitted: bool = True,
) -> float:
    """Fraction of samples whose normality hypothesis is *not* rejected.

    This is the Table 1 statistic.  Samples too degenerate to test are
    skipped, mirroring the paper's per-task sweep over the survey dataset.
    Returns ``nan`` when no sample was testable.
    """
    tested = 0
    passed = 0
    for sample in samples:
        try:
            result = chi_square_normality_test(sample, bins=bins, subtract_fitted=subtract_fitted)
        except ValueError:
            continue
        tested += 1
        if not result.rejects_at(alpha):
            passed += 1
    if tested == 0:
        return float("nan")
    return passed / tested
