"""Descriptive statistics backing the evaluation figures.

- :func:`histogram` — normalised histograms for Fig. 2 (observation-error
  distribution vs. the standard normal density).
- :func:`boxplot_stats` — five-number summaries for Fig. 7 (observation error
  binned by user expertise).
- :func:`empirical_cdf` — the Fig. 12 CDF of MLE iterations to convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Histogram", "BoxplotStats", "histogram", "boxplot_stats", "empirical_cdf"]


@dataclass(frozen=True)
class Histogram:
    """A density-normalised histogram."""

    edges: np.ndarray
    density: np.ndarray

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    @property
    def widths(self) -> np.ndarray:
        return np.diff(self.edges)

    def total_mass(self) -> float:
        return float(np.sum(self.density * self.widths))


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary plus mean, as drawn in the paper's boxplots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def histogram(values: Sequence[float], bins: int = 30, value_range: "tuple[float, float] | None" = None) -> Histogram:
    """Density histogram of ``values``.

    ``value_range`` pins the support (the paper plots errors on roughly
    [-4, 4]); out-of-range values are clipped into the terminal bins so the
    density still integrates to one over the plotted support.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("cannot build a histogram of an empty sample")
    if bins < 1:
        raise ValueError("bins must be at least 1")
    if value_range is not None:
        lo, hi = value_range
        if not lo < hi:
            raise ValueError("value_range must be increasing")
        x = np.clip(x, lo, hi)
        density, edges = np.histogram(x, bins=bins, range=(lo, hi), density=True)
    else:
        density, edges = np.histogram(x, bins=bins, density=True)
    return Histogram(edges=edges, density=density)


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    """Five-number summary of ``values`` using linear-interpolation quartiles."""
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("cannot summarise an empty sample")
    q1, median, q3 = np.percentile(x, [25.0, 50.0, 75.0])
    return BoxplotStats(
        minimum=float(np.min(x)),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(np.max(x)),
        mean=float(np.mean(x)),
        count=int(x.size),
    )


def empirical_cdf(values: Sequence[float]) -> "tuple[np.ndarray, np.ndarray]":
    """Return ``(sorted_values, cumulative_probabilities)``.

    ``cumulative_probabilities[k]`` is the fraction of the sample that is
    less than or equal to ``sorted_values[k]`` — the standard right-continuous
    empirical CDF plotted in Fig. 12.
    """
    x = np.sort(np.asarray(values, dtype=float))
    if x.size == 0:
        raise ValueError("cannot build a CDF of an empty sample")
    probs = np.arange(1, x.size + 1, dtype=float) / x.size
    return x, probs
