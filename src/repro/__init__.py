"""ETA2: Expertise-Aware Truth Analysis and Task Allocation (ICDCS 2017).

Reproduction of Zhang, Wu, Huang, Ji & Cao's mobile-crowdsourcing system.
The most common entry points are re-exported here:

- :class:`ETA2System` / :class:`IncomingTask` — the closed loop of Figure 1,
- :func:`estimate_truth` — the Section 4 batch MLE,
- :class:`MaxQualityAllocator` / :class:`MinCostAllocator` — Section 5,
- the three dataset generators and the simulation driver used by the
  evaluation experiments.

See the per-package documentation (``repro.semantics``, ``repro.clustering``,
``repro.core``, ``repro.truthdiscovery``, ``repro.simulation``,
``repro.datasets``, ``repro.stats``, ``repro.experiments``) for the full map,
and DESIGN.md for the paper-to-module inventory.
"""

from repro.core.allocation import MaxQualityAllocator, MinCostAllocator
from repro.core.pipeline import ETA2System, IncomingTask, StepResult, default_embedding
from repro.core.truth import TruthAnalysisResult, estimate_truth
from repro.core.update import ExpertiseUpdater
from repro.datasets import sfv_dataset, survey_dataset, synthetic_dataset
from repro.observability import MetricsRegistry, RunTracer, Telemetry, run_manifest
from repro.simulation import SimulationConfig, run_simulation
from repro.truthdiscovery import ObservationMatrix

__version__ = "1.0.0"

__all__ = [
    "ETA2System",
    "ExpertiseUpdater",
    "IncomingTask",
    "MaxQualityAllocator",
    "MetricsRegistry",
    "MinCostAllocator",
    "ObservationMatrix",
    "RunTracer",
    "SimulationConfig",
    "StepResult",
    "Telemetry",
    "TruthAnalysisResult",
    "default_embedding",
    "estimate_truth",
    "run_manifest",
    "run_simulation",
    "sfv_dataset",
    "survey_dataset",
    "synthetic_dataset",
    "__version__",
]
