"""Effort-responsive users.

Each user has a full-effort expertise vector (the hidden ``u_i`` of the
paper) and a *low-effort discount*: slacking yields ``low_effort_factor *
u`` expertise at a lower per-task cost (answering from the couch instead of
going to measure).  Before answering an assignment the user compares, for
each effort level, the expected payment under the announced scheme against
the effort's cost, and picks the better deal.

The accuracy probability a user plugs into the expected payment is the
model's own Eq. 11 quantity ``Phi(eps_bar * u_eff) - Phi(-eps_bar * u_eff)``
with the effective expertise of that effort level — users know their own
skill (they do not know the server's estimates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.expertise import MIN_EXPERTISE
from repro.stats.normal import symmetric_tail_probability

__all__ = ["EFFORT_LEVELS", "EffortChoice", "EffortResponsiveUser"]

EFFORT_LEVELS = ("low", "high")


@dataclass(frozen=True)
class EffortChoice:
    """One user's decision for one assignment."""

    effort: str
    effective_expertise: float
    expected_utility: float


@dataclass(frozen=True)
class EffortResponsiveUser:
    """A user whose expertise depends on chosen effort.

    ``full_expertise`` is the per-domain vector at high effort;
    ``low_effort_factor`` scales it down when slacking; ``cost_low`` /
    ``cost_high`` are the per-task effort costs (in payment units).
    """

    user_id: int
    full_expertise: tuple
    low_effort_factor: float = 0.25
    cost_low: float = 0.05
    cost_high: float = 0.6

    def __post_init__(self):
        if not 0.0 <= self.low_effort_factor <= 1.0:
            raise ValueError("low_effort_factor must lie in [0, 1]")
        if self.cost_low < 0 or self.cost_high < self.cost_low:
            raise ValueError("need 0 <= cost_low <= cost_high")

    def effective_expertise(self, domain: int, effort: str) -> float:
        base = float(self.full_expertise[domain])
        if effort == "high":
            return max(base, MIN_EXPERTISE)
        if effort == "low":
            return max(base * self.low_effort_factor, MIN_EXPERTISE)
        raise ValueError(f"unknown effort level {effort!r}")

    def accuracy_probability(self, domain: int, effort: str, eps_bar: float) -> float:
        u = self.effective_expertise(domain, effort)
        return float(symmetric_tail_probability(eps_bar * u))

    def choose_effort(self, domain: int, scheme, eps_bar: float) -> EffortChoice:
        """Pick the effort level maximising expected pay minus effort cost.

        Ties break toward low effort (why work harder for nothing — which
        is exactly what happens under accuracy-blind flat pay).
        """
        best: "EffortChoice | None" = None
        for effort, cost in (("low", self.cost_low), ("high", self.cost_high)):
            probability = self.accuracy_probability(domain, effort, eps_bar)
            utility = scheme.expected_pay(probability) - cost
            candidate = EffortChoice(
                effort=effort,
                effective_expertise=self.effective_expertise(domain, effort),
                expected_utility=float(utility),
            )
            if best is None or candidate.expected_utility > best.expected_utility + 1e-12:
                best = candidate
        return best
