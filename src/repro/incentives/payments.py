"""Payment schemes.

A scheme answers two questions:

- what does the server pay for one completed assignment (given whether the
  observation turned out accurate)?
- what payment does a *user* expect for one assignment if their observation
  is accurate with probability ``p`` — the quantity that drives the effort
  choice in :mod:`repro.incentives.effort`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlatPayment", "AccuracyBonusPayment"]


@dataclass(frozen=True)
class FlatPayment:
    """A fixed amount per completed assignment, accuracy-blind.

    The paper's Section 6.4.3 cost model ("a user is paid $1 for each task
    he or she finishes").
    """

    rate: float = 1.0

    def __post_init__(self):
        if self.rate < 0:
            raise ValueError("rate must be non-negative")

    name = "flat"

    def payout(self, accurate: bool) -> float:
        return self.rate

    def expected_pay(self, accuracy_probability: float) -> float:
        return self.rate


@dataclass(frozen=True)
class AccuracyBonusPayment:
    """A small base plus a bonus paid only for accurate observations.

    "Accurate" is judged against the server's final estimate: the
    observation must land within ``eps_bar`` base numbers of it — the same
    band as the min-cost quality requirement, so the server can audit the
    payout from data it already has.
    """

    base: float = 0.2
    bonus: float = 1.6
    eps_bar: float = 0.5

    def __post_init__(self):
        if self.base < 0 or self.bonus < 0:
            raise ValueError("base and bonus must be non-negative")
        if self.eps_bar <= 0:
            raise ValueError("eps_bar must be positive")

    name = "accuracy-bonus"

    def payout(self, accurate: bool) -> float:
        return self.base + (self.bonus if accurate else 0.0)

    def expected_pay(self, accuracy_probability: float) -> float:
        if not 0.0 <= accuracy_probability <= 1.0:
            raise ValueError("accuracy_probability must lie in [0, 1]")
        return self.base + self.bonus * accuracy_probability
