"""Incentive mechanisms with effort-responsive users (extension).

The paper treats payment as a fixed per-assignment cost and cites
quality-aware incentive mechanisms ([34][35]) as orthogonal work that "can
be easily built on top of our strategy".  This package builds exactly that:

- :mod:`repro.incentives.payments` — payment schemes: flat per-task pay and
  an accuracy bonus paid when a user's observation lands within the quality
  band of the final estimate,
- :mod:`repro.incentives.effort` — users who *choose their effort*: high
  effort reaches their full expertise but costs more; each user picks the
  effort whose expected payment minus cost is larger,
- :mod:`repro.experiments.incentives` — the closed loop: under flat pay
  rational users slack (low effort dominates), data quality collapses and
  no amount of clever truth analysis recovers it; an accuracy bonus makes
  high effort individually rational for skilled users, and ETA2's expertise
  tracking then routes tasks to exactly those users.
"""

from repro.incentives.effort import EFFORT_LEVELS, EffortChoice, EffortResponsiveUser
from repro.incentives.payments import AccuracyBonusPayment, FlatPayment

__all__ = [
    "AccuracyBonusPayment",
    "EFFORT_LEVELS",
    "EffortChoice",
    "EffortResponsiveUser",
    "FlatPayment",
]
