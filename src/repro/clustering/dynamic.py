"""Dynamic hierarchical clustering (Section 3.3.2).

After the warm-up fit, newly created tasks arrive every time step.  Each new
task starts as a singleton cluster next to the ``M`` existing domain
clusters, and the same average-linkage merge loop runs over the ``M + m'``
clusters.  Three outcomes are possible for the pre-existing domains, all of
which this module detects and reports:

- a new task joins an existing domain (the common case),
- a set of new tasks forms a brand-new domain,
- new tasks bridge two existing domains, which therefore merge — per §4.2 the
  lower-numbered domain ``k1`` absorbs ``k2`` and ``k2`` is deleted.

The reference distance ``d_star`` ("the longest distance between all existing
tasks ... a fixed value") is frozen at warm-up by default; pass
``refresh_d_star=True`` to recompute it as tasks accumulate.

Points are represented by their concatenated pair-word vectors ``[V_Q, V_T]``;
Eq. 2's distance is exactly half the squared Euclidean distance between
concatenated vectors, computed internally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.clustering.linkage import AverageLinkage
from repro.perf.cache import GrowOnlyDistanceMatrix, GrowOnlyRowBuffer

__all__ = ["DomainMerge", "DynamicClusteringResult", "DynamicHierarchicalClustering"]


@dataclass(frozen=True)
class DomainMerge:
    """Domain ``deleted`` was absorbed into domain ``kept``."""

    kept: int
    deleted: int


@dataclass(frozen=True)
class DynamicClusteringResult:
    """Outcome of one warm-up fit or one incremental update."""

    added_labels: np.ndarray
    new_domains: tuple
    merges: tuple
    all_labels: np.ndarray

    @property
    def domain_count(self) -> int:
        return len(set(self.all_labels.tolist()))


def _eq2_distances(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Eq. 2 distances between two batches of concatenated pair vectors."""
    left_norms = np.einsum("ij,ij->i", left, left)
    right_norms = np.einsum("ij,ij->i", right, right)
    squared = left_norms[:, None] + right_norms[None, :] - 2.0 * (left @ right.T)
    np.maximum(squared, 0.0, out=squared)
    return 0.5 * squared


def _cosine_block(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    left_norms = np.linalg.norm(left, axis=1)
    right_norms = np.linalg.norm(right, axis=1)
    safe_left = np.where(left_norms > 0, left_norms, 1.0)
    safe_right = np.where(right_norms > 0, right_norms, 1.0)
    similarity = (left / safe_left[:, None]) @ (right / safe_right[:, None]).T
    similarity[left_norms == 0, :] = 0.0
    similarity[:, right_norms == 0] = 0.0
    np.clip(similarity, -1.0, 1.0, out=similarity)
    return 1.0 - similarity


def _pair_cosine_distances(left: np.ndarray, right: np.ndarray, split: int) -> np.ndarray:
    """Mean of query-side and target-side cosine distances (see
    :func:`repro.semantics.distance.pair_distance` with ``metric='cosine'``)."""
    return 0.5 * (
        _cosine_block(left[:, :split], right[:, :split])
        + _cosine_block(left[:, split:], right[:, split:])
    )


class DynamicHierarchicalClustering:
    """Stateful task-to-domain clustering across time steps."""

    def __init__(
        self,
        gamma: float,
        refresh_d_star: bool = False,
        metric: str = "euclidean",
    ):
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        if metric not in ("euclidean", "cosine"):
            raise ValueError("metric must be 'euclidean' or 'cosine'")
        self._gamma = float(gamma)
        self._refresh_d_star = bool(refresh_d_star)
        self._metric = metric
        # Grow-only buffers: each arrival batch appends its vectors and only
        # the *new* distance rows/columns; existing pairs are never
        # recomputed or copied (beyond amortised capacity doubling).
        self._points = GrowOnlyRowBuffer()
        self._cache = GrowOnlyDistanceMatrix()
        self._domains: dict = {}
        self._next_domain_id = 0
        self._d_star: "float | None" = None

    def _distances(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        if self._metric == "euclidean":
            return _eq2_distances(left, right)
        # Concatenated vectors are [V_Q, V_T]; the cosine metric treats the
        # halves separately, matching pair_distance(metric="cosine").
        split = left.shape[1] // 2
        return _pair_cosine_distances(left, right, split)

    @property
    def gamma(self) -> float:
        return self._gamma

    @property
    def d_star(self) -> "float | None":
        return self._d_star

    @property
    def is_fitted(self) -> bool:
        return self._points.count > 0

    @property
    def _base(self) -> np.ndarray:
        """The cached pairwise distance matrix (read-only view)."""
        return self._cache.view()

    @property
    def point_count(self) -> int:
        return self._points.count

    def cache_stats(self) -> dict:
        """Distance-cache effectiveness (see ``GrowOnlyDistanceMatrix``)."""
        return self._cache.cache_stats()

    @property
    def domain_ids(self) -> list:
        return sorted(self._domains)

    def labels(self) -> np.ndarray:
        """Domain id of every point seen so far."""
        labels = np.full(self.point_count, -1, dtype=int)
        if self._domains:
            indices = np.concatenate(
                [np.asarray(members, dtype=int) for members in self._domains.values()]
            )
            ids = np.repeat(
                np.fromiter(self._domains, dtype=int, count=len(self._domains)),
                [len(members) for members in self._domains.values()],
            )
            labels[indices] = ids
        return labels

    def members(self, domain_id: int) -> list:
        """Point indices belonging to ``domain_id``."""
        return list(self._domains[domain_id])

    def fit(self, vectors: "np.ndarray | Sequence") -> DynamicClusteringResult:
        """Warm-up fit over the initial batch of tasks."""
        if self.is_fitted:
            raise RuntimeError("already fitted; use add() for new tasks")
        points = np.atleast_2d(np.asarray(vectors, dtype=float))
        if points.shape[0] == 0:
            raise ValueError("warm-up batch must contain at least one task")
        self._points.append(points)
        base = self._distances(points, points)
        np.fill_diagonal(base, 0.0)
        self._cache.initialise(base)
        self._d_star = self._cache.current_max
        return self._recluster(groups=[[i] for i in range(points.shape[0])], existing_of_group={})

    def add(self, vectors: "np.ndarray | Sequence") -> DynamicClusteringResult:
        """Incremental update with one time step's new tasks."""
        if not self.is_fitted:
            raise RuntimeError("call fit() with the warm-up tasks first")
        new_points = np.atleast_2d(np.asarray(vectors, dtype=float))
        if new_points.shape[0] == 0:
            return DynamicClusteringResult(
                added_labels=np.zeros(0, dtype=int),
                new_domains=(),
                merges=(),
                all_labels=self.labels(),
            )
        if new_points.shape[1] != self._points.dim:
            raise ValueError("new task vectors have a different dimensionality")

        old_count = self._points.count
        cross = self._distances(self._points.view(), new_points)
        inner = self._distances(new_points, new_points)
        np.fill_diagonal(inner, 0.0)
        self._points.append(new_points)
        self._ingest_distances(cross, inner)
        if self._refresh_d_star:
            self._d_star = self._cache.current_max

        groups = []
        existing_of_group: dict = {}
        for domain_id in sorted(self._domains):
            existing_of_group[len(groups)] = domain_id
            groups.append(list(self._domains[domain_id]))
        for offset in range(new_points.shape[0]):
            groups.append([old_count + offset])
        return self._recluster(groups=groups, existing_of_group=existing_of_group, added_from=old_count)

    def _ingest_distances(self, cross: np.ndarray, inner: np.ndarray) -> None:
        """Fold one batch's new distance rows into the cached matrix.

        Overridden by the recomputing reference implementation in
        :mod:`repro.perf.reference` (the equivalence yardstick).
        """
        self._cache.append(cross, inner)

    def _recluster(self, groups, existing_of_group: dict, added_from: int = 0) -> DynamicClusteringResult:
        threshold = self._gamma * self._d_star
        engine = AverageLinkage(self._cache.view(), groups)
        slot_members_before = {slot: set(groups[slot]) for slot in range(len(groups))}
        engine.merge_until(threshold)

        # Classify each final cluster by the pre-existing domains it contains.
        final_members = engine.members()
        domains: dict = {}
        new_domain_ids: list = []
        merges: list = []
        for members in final_members:
            member_set = set(members)
            inherited = sorted(
                existing_of_group[slot]
                for slot, points in slot_members_before.items()
                if slot in existing_of_group and points <= member_set
            )
            if not inherited:
                domain_id = self._next_domain_id
                self._next_domain_id += 1
                new_domain_ids.append(domain_id)
            else:
                domain_id = inherited[0]
                merges.extend(DomainMerge(kept=domain_id, deleted=other) for other in inherited[1:])
            domains[domain_id] = sorted(members)
        self._domains = domains
        self._next_domain_id = max(self._next_domain_id, max(domains) + 1)

        all_labels = self.labels()
        return DynamicClusteringResult(
            added_labels=all_labels[added_from:],
            new_domains=tuple(new_domain_ids),
            merges=tuple(merges),
            all_labels=all_labels,
        )
