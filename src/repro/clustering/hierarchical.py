"""Static hierarchical clustering (Section 3.3.1).

Every task starts in its own cluster; the two closest clusters (average
linkage) are merged repeatedly until the closest remaining pair is at least
``gamma * d_star`` apart, where ``d_star`` is the longest pairwise task
distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.linkage import AverageLinkage

__all__ = ["ClusteringResult", "hierarchical_clustering"]


@dataclass(frozen=True)
class ClusteringResult:
    """Flat clustering of ``n`` points."""

    clusters: tuple
    labels: np.ndarray
    threshold: float
    d_star: float

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)


def _labels_from_clusters(clusters, n_points: int) -> np.ndarray:
    labels = np.full(n_points, -1, dtype=int)
    if clusters:
        indices = np.concatenate([np.asarray(members, dtype=int) for members in clusters])
        ids = np.repeat(np.arange(len(clusters)), [len(members) for members in clusters])
        labels[indices] = ids
    if np.any(labels < 0):
        raise AssertionError("internal error: clustering did not cover all points")
    return labels


def hierarchical_clustering(
    distances: np.ndarray,
    gamma: float,
    d_star: "float | None" = None,
) -> ClusteringResult:
    """Cluster points given their pairwise ``distances``.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` matrix of pairwise distances.
    gamma:
        The paper's clustering parameter in [0, 1]; the merge loop stops when
        the closest pair of clusters is at distance >= ``gamma * d_star``.
    d_star:
        The reference "longest distance between all existing tasks".  By
        default it is taken from ``distances``; the dynamic front-end passes
        the fixed warm-up value instead.
    """
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError("distances must be a square matrix")
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must lie in [0, 1]")
    n = distances.shape[0]
    if n == 0:
        return ClusteringResult(clusters=(), labels=np.zeros(0, dtype=int), threshold=0.0, d_star=0.0)

    if d_star is None:
        d_star = float(distances.max())
    if d_star < 0:
        raise ValueError("d_star must be non-negative")
    threshold = gamma * d_star

    engine = AverageLinkage(distances, [[i] for i in range(n)])
    engine.merge_until(threshold)
    clusters = tuple(tuple(sorted(members)) for members in engine.members())
    return ClusteringResult(
        clusters=clusters,
        labels=_labels_from_clusters(clusters, n),
        threshold=threshold,
        d_star=float(d_star),
    )
