"""Average-linkage agglomerative merging over a fixed base distance matrix.

The paper defines cluster distance as the *average* pairwise distance between
the tasks of two clusters (§3.3.1).  Averages are awkward to update under
merging, but summed distances are exact and trivial::

    sum(A u B, C) = sum(A, C) + sum(B, C)
    avg(A, C)     = sum(A, C) / (|A| * |C|)

:class:`AverageLinkage` therefore maintains the cluster-to-cluster *sum*
matrix and the cluster sizes, exposing merge steps to both the static and the
dynamic clustering front-ends.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["AverageLinkage"]


class AverageLinkage:
    """Mutable average-linkage state over ``n`` initial clusters.

    Parameters
    ----------
    base:
        Symmetric ``(n_points, n_points)`` matrix of point-to-point distances.
    groups:
        Initial clusters as sequences of point indices.  Every point must
        appear in exactly one group.
    """

    def __init__(self, base: np.ndarray, groups: Sequence[Sequence[int]]):
        base = np.asarray(base, dtype=float)
        if base.ndim != 2 or base.shape[0] != base.shape[1]:
            raise ValueError("base must be a square matrix")
        if not np.allclose(base, base.T):
            raise ValueError("base distance matrix must be symmetric")
        n_points = base.shape[0]
        flat = [index for group in groups for index in group]
        if sorted(flat) != list(range(n_points)):
            raise ValueError("groups must partition the point indices exactly")

        self._members: list = [list(group) for group in groups]
        k = len(self._members)
        self._sizes = np.array([len(group) for group in self._members], dtype=float)
        sums = np.zeros((k, k), dtype=float)
        for a in range(k):
            rows = base[np.ix_(self._members[a], self._members[a])]
            sums[a, a] = rows.sum() / 2.0
            for b in range(a + 1, k):
                total = base[np.ix_(self._members[a], self._members[b])].sum()
                sums[a, b] = total
                sums[b, a] = total
        self._sums = sums
        self._alive = np.ones(k, dtype=bool)

    @property
    def cluster_count(self) -> int:
        return int(self._alive.sum())

    def members(self) -> list:
        """Point indices of each live cluster (copy)."""
        return [list(self._members[i]) for i in np.flatnonzero(self._alive)]

    def live_indices(self) -> np.ndarray:
        """Internal slot indices of the live clusters."""
        return np.flatnonzero(self._alive)

    def members_of(self, slot: int) -> list:
        if not self._alive[slot]:
            raise ValueError(f"cluster slot {slot} is not alive")
        return list(self._members[slot])

    def average_distances(self) -> np.ndarray:
        """Average-linkage distance matrix over live slots (inf diagonal).

        Indexed by internal slot; dead slots are fully inf so that argmin
        scans stay valid without compaction.
        """
        sizes = self._sizes
        with np.errstate(divide="ignore", invalid="ignore"):
            avg = self._sums / np.outer(sizes, sizes)
        dead = ~self._alive
        avg[dead, :] = np.inf
        avg[:, dead] = np.inf
        np.fill_diagonal(avg, np.inf)
        return avg

    def closest_pair(self) -> "tuple[int, int, float]":
        """Slots of the two closest live clusters and their average distance."""
        if self.cluster_count < 2:
            raise ValueError("need at least two live clusters")
        avg = self.average_distances()
        position = int(np.argmin(avg))
        a, b = divmod(position, avg.shape[1])
        return (min(a, b), max(a, b), float(avg[a, b]))

    def merge(self, a: int, b: int) -> int:
        """Merge slot ``b`` into slot ``a``; returns the surviving slot."""
        if a == b:
            raise ValueError("cannot merge a cluster with itself")
        if not (self._alive[a] and self._alive[b]):
            raise ValueError("both clusters must be alive")
        # Internal sum of the union: both internal sums plus the cross sum.
        new_internal = self._sums[a, a] + self._sums[b, b] + self._sums[a, b]
        cross = self._sums[a, :] + self._sums[b, :]
        self._sums[a, :] = cross
        self._sums[:, a] = cross
        self._sums[a, a] = new_internal
        self._alive[b] = False
        self._sums[b, :] = 0.0
        self._sums[:, b] = 0.0
        self._sizes[a] = self._sizes[a] + self._sizes[b]
        self._sizes[b] = 0.0
        self._members[a].extend(self._members[b])
        self._members[b] = []
        return a

    def merge_until(self, threshold: float) -> list:
        """Repeatedly merge the closest pair while its distance < ``threshold``.

        Returns the merge log as ``(kept_slot, absorbed_slot, distance)``
        tuples, in merge order — the §3.3.1 loop with the §3.3.1 termination
        criterion (stop when the closest pair is at or beyond the minimum
        allowed distance).
        """
        log: list = []
        while self.cluster_count > 1:
            a, b, distance = self.closest_pair()
            if not distance < threshold:
                break
            kept = self.merge(a, b)
            absorbed = b if kept == a else a
            log.append((kept, absorbed, distance))
        return log
