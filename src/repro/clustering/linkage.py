"""Average-linkage agglomerative merging over a fixed base distance matrix.

The paper defines cluster distance as the *average* pairwise distance between
the tasks of two clusters (§3.3.1).  Averages are awkward to update under
merging, but summed distances are exact and trivial::

    sum(A u B, C) = sum(A, C) + sum(B, C)
    avg(A, C)     = sum(A, C) / (|A| * |C|)

:class:`AverageLinkage` therefore maintains the cluster-to-cluster *sum*
matrix and the cluster sizes, exposing merge steps to both the static and the
dynamic clustering front-ends.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["AverageLinkage"]

#: Above this size, symmetry is validated on a deterministic random sample
#: instead of every entry (an O(n²) scan of a 2000², mostly-cached matrix is
#: still cheap; beyond that the scan itself becomes a per-construction tax).
_SYMMETRY_EXHAUSTIVE_LIMIT = 2048

#: Sample size for the probabilistic symmetry check on large matrices.
_SYMMETRY_SAMPLES = 4096


def _require_symmetric(base: np.ndarray) -> None:
    """Validate symmetry without materialising a transposed copy.

    Small matrices are checked exhaustively in column blocks (bounded
    temporaries instead of ``np.allclose(base, base.T)``'s full-size ones);
    large matrices are checked on a fixed deterministic sample of entry
    pairs, which catches any non-adversarial asymmetry with near-certainty
    at O(1) cost.
    """
    n = base.shape[0]
    if n <= 1:
        return
    if n <= _SYMMETRY_EXHAUSTIVE_LIMIT:
        step = max(1, (1 << 16) // n)
        for start in range(0, n, step):
            stop = min(start + step, n)
            if not np.allclose(base[start:stop, :], base[:, start:stop].T):
                raise ValueError("base distance matrix must be symmetric")
        return
    rng = np.random.default_rng(0xE7A2)
    rows = rng.integers(0, n, _SYMMETRY_SAMPLES)
    cols = rng.integers(0, n, _SYMMETRY_SAMPLES)
    if not np.allclose(base[rows, cols], base[cols, rows]):
        raise ValueError("base distance matrix must be symmetric")


def _aggregate_group_sums(base: np.ndarray, labels: np.ndarray, k: int) -> np.ndarray:
    """Cluster-to-cluster summed distances via label aggregation.

    Equivalent to the quadratic Python loop over group pairs: fold rows by
    group, then columns, using ``np.add.reduceat`` over a stable
    group-sorted permutation — two O(n²) vectorised passes total.  The
    diagonal holds each group's *internal* sum (each unordered pair once).
    """
    if k == 0 or labels.size == 0:
        return np.zeros((k, k), dtype=float)
    order = np.argsort(labels, kind="stable")
    counts = np.bincount(labels, minlength=k)
    # reduceat cannot represent empty segments (it would return the next
    # group's first row instead of a zero sum), so aggregate the non-empty
    # groups and scatter into the full k x k layout; empty groups keep the
    # all-zero rows the reference loop produced.
    nonempty = np.flatnonzero(counts)
    starts = np.zeros(nonempty.size, dtype=int)
    np.cumsum(counts[nonempty][:-1], out=starts[1:])
    row_sums = np.add.reduceat(base[order], starts, axis=0)
    compact = np.add.reduceat(row_sums[:, order], starts, axis=1)
    if nonempty.size == k:
        sums = np.ascontiguousarray(compact, dtype=float)
    else:
        sums = np.zeros((k, k), dtype=float)
        sums[np.ix_(nonempty, nonempty)] = compact
    # Diagonal blocks were summed over ordered pairs (plus the zero or
    # symmetric diagonal); halve to count each unordered pair once.
    diagonal = np.einsum("ii->i", sums)
    diagonal *= 0.5
    return sums


class AverageLinkage:
    """Mutable average-linkage state over ``n`` initial clusters.

    Parameters
    ----------
    base:
        Symmetric ``(n_points, n_points)`` matrix of point-to-point distances.
    groups:
        Initial clusters as sequences of point indices.  Every point must
        appear in exactly one group.
    """

    def __init__(self, base: np.ndarray, groups: Sequence[Sequence[int]]):
        base = np.asarray(base, dtype=float)
        if base.ndim != 2 or base.shape[0] != base.shape[1]:
            raise ValueError("base must be a square matrix")
        _require_symmetric(base)
        n_points = base.shape[0]

        self._members: list = [list(group) for group in groups]
        k = len(self._members)
        flat = np.fromiter(
            (index for group in self._members for index in group),
            dtype=np.int64,
        )
        labels = np.full(n_points, -1, dtype=np.int64)
        valid = flat.size == n_points and (
            flat.size == 0 or (flat.min() >= 0 and flat.max() < n_points)
        )
        if valid:
            group_of = np.repeat(
                np.arange(k), [len(group) for group in self._members]
            )
            labels[flat] = group_of
            valid = bool(np.all(labels >= 0))
        if not valid:
            raise ValueError("groups must partition the point indices exactly")

        self._sizes = np.array([len(group) for group in self._members], dtype=float)
        if k == n_points and n_points > 0 and self._sizes.max() == 1.0:
            # All-singleton start (the static front-end's common case): the
            # group sums are just the base matrix reordered, diagonal halved.
            sums = base[np.ix_(flat, flat)].astype(float, copy=True)
            np.einsum("ii->i", sums)[...] *= 0.5
        else:
            sums = _aggregate_group_sums(base, labels, k)
        self._sums = sums
        self._alive = np.ones(k, dtype=bool)

    @property
    def cluster_count(self) -> int:
        return int(self._alive.sum())

    def members(self) -> list:
        """Point indices of each live cluster (copy)."""
        return [list(self._members[i]) for i in np.flatnonzero(self._alive)]

    def live_indices(self) -> np.ndarray:
        """Internal slot indices of the live clusters."""
        return np.flatnonzero(self._alive)

    def members_of(self, slot: int) -> list:
        if not self._alive[slot]:
            raise ValueError(f"cluster slot {slot} is not alive")
        return list(self._members[slot])

    def average_distances(self) -> np.ndarray:
        """Average-linkage distance matrix over live slots (inf diagonal).

        Indexed by internal slot; dead slots are fully inf so that argmin
        scans stay valid without compaction.
        """
        sizes = self._sizes
        with np.errstate(divide="ignore", invalid="ignore"):
            avg = self._sums / np.outer(sizes, sizes)
        dead = ~self._alive
        avg[dead, :] = np.inf
        avg[:, dead] = np.inf
        np.fill_diagonal(avg, np.inf)
        return avg

    def closest_pair(self) -> "tuple[int, int, float]":
        """Slots of the two closest live clusters and their average distance."""
        if self.cluster_count < 2:
            raise ValueError("need at least two live clusters")
        avg = self.average_distances()
        position = int(np.argmin(avg))
        a, b = divmod(position, avg.shape[1])
        return (min(a, b), max(a, b), float(avg[a, b]))

    def merge(self, a: int, b: int) -> int:
        """Merge slot ``b`` into slot ``a``; returns the surviving slot."""
        if a == b:
            raise ValueError("cannot merge a cluster with itself")
        if not (self._alive[a] and self._alive[b]):
            raise ValueError("both clusters must be alive")
        # Internal sum of the union: both internal sums plus the cross sum.
        new_internal = self._sums[a, a] + self._sums[b, b] + self._sums[a, b]
        cross = self._sums[a, :] + self._sums[b, :]
        self._sums[a, :] = cross
        self._sums[:, a] = cross
        self._sums[a, a] = new_internal
        self._alive[b] = False
        self._sums[b, :] = 0.0
        self._sums[:, b] = 0.0
        self._sizes[a] = self._sizes[a] + self._sizes[b]
        self._sizes[b] = 0.0
        self._members[a].extend(self._members[b])
        self._members[b] = []
        return a

    def merge_until(self, threshold: float) -> list:
        """Repeatedly merge the closest pair while its distance < ``threshold``.

        Returns the merge log as ``(kept_slot, absorbed_slot, distance)``
        tuples, in merge order — the §3.3.1 loop with the §3.3.1 termination
        criterion (stop when the closest pair is at or beyond the minimum
        allowed distance).
        """
        log: list = []
        while self.cluster_count > 1:
            a, b, distance = self.closest_pair()
            if not distance < threshold:
                break
            kept = self.merge(a, b)
            absorbed = b if kept == a else a
            log.append((kept, absorbed, distance))
        return log
