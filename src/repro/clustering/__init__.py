"""Hierarchical clustering of tasks into expertise domains (Section 3.3).

Tasks are clustered by their pair-word semantic distance (Eq. 2) with
average-linkage agglomerative clustering.  The termination threshold is
``gamma * d_star`` where ``d_star`` is the longest pairwise distance among
the warm-up tasks and ``gamma`` in [0, 1] is the paper's single clustering
parameter.

- :mod:`repro.clustering.linkage` — the vectorised average-linkage engine
  (cluster-to-cluster summed distances, exact under merging),
- :mod:`repro.clustering.hierarchical` — the static algorithm of §3.3.1,
- :mod:`repro.clustering.dynamic` — the dynamic variant of §3.3.2 that
  absorbs newly created tasks each time step, creating new domains and
  reporting domain-merge events for the expertise updater.
"""

from repro.clustering.dynamic import DomainMerge, DynamicClusteringResult, DynamicHierarchicalClustering
from repro.clustering.hierarchical import ClusteringResult, hierarchical_clustering
from repro.clustering.linkage import AverageLinkage

__all__ = [
    "AverageLinkage",
    "ClusteringResult",
    "DomainMerge",
    "DynamicClusteringResult",
    "DynamicHierarchicalClustering",
    "hierarchical_clustering",
]
