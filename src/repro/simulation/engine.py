"""The multi-day simulation driver (Section 6.2's experimental loop).

Tasks are evenly distributed across ``n_days`` days.  Day 0 is the warm-up
period — the approaches allocate randomly because no reliability or
expertise is known yet (each approach handles this internally).  Each day
the engine hands the approach that day's tasks and an ``observe`` callback
wired to the ground-truth world, then scores the returned truth estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.rng import ensure_rng
from repro.simulation.approaches import Approach
from repro.simulation.metrics import normalized_estimation_error
from repro.truthdiscovery.base import ObservationMatrix

__all__ = ["SimulationConfig", "DayRecord", "SimulationResult", "run_simulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level settings."""

    n_days: int = 5
    bias_fraction: float = 0.0
    #: Std of the per-day Gaussian random walk on hidden user expertise
    #: (0 = the paper's stationary setting).
    drift_rate: float = 0.0
    #: Fraction of users replaced by adversarial behaviour, and its kind
    #: (see :mod:`repro.simulation.adversaries`).
    adversary_fraction: float = 0.0
    adversary_kind: str = "random"
    #: Probability that an assigned user never delivers an observation
    #: (capacity and recruiting cost are still spent).
    dropout_rate: float = 0.0
    seed: "int | None" = None

    def __post_init__(self):
        if self.n_days < 1:
            raise ValueError("n_days must be at least 1")
        if not 0.0 <= self.bias_fraction <= 1.0:
            raise ValueError("bias_fraction must lie in [0, 1]")
        if self.drift_rate < 0.0:
            raise ValueError("drift_rate must be non-negative")
        if not 0.0 <= self.adversary_fraction <= 1.0:
            raise ValueError("adversary_fraction must lie in [0, 1]")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must lie in [0, 1)")


@dataclass(frozen=True)
class DayRecord:
    """Per-day outcome."""

    day: int
    task_indices: np.ndarray
    estimation_error: float
    allocation_cost: float
    pair_count: int
    observations: ObservationMatrix
    truths: np.ndarray

    @property
    def observed_task_fraction(self) -> float:
        observed = self.observations.mask.any(axis=0)
        return float(np.mean(observed)) if observed.size else 0.0


@dataclass(frozen=True)
class SimulationResult:
    """Full outcome of one simulation run."""

    approach_name: str
    dataset_name: str
    days: tuple
    expertise_snapshot: "dict | None"
    task_domain_labels: "np.ndarray | None"
    mle_iterations: tuple
    #: Hidden per-pair expertise of every collected observation, aligned
    #: with ``all_observation_errors`` (Figs. 2 and 7).
    observation_expertise: np.ndarray
    observation_errors: np.ndarray
    #: Users that were given adversarial behaviour this run (empty tuple in
    #: the paper's honest setting).
    adversary_users: tuple = ()

    @property
    def mean_estimation_error(self) -> float:
        errors = [day.estimation_error for day in self.days if np.isfinite(day.estimation_error)]
        return float(np.mean(errors)) if errors else float("nan")

    @property
    def final_day_error(self) -> float:
        return self.days[-1].estimation_error

    @property
    def total_cost(self) -> float:
        return float(sum(day.allocation_cost for day in self.days))

    def errors_by_day(self) -> np.ndarray:
        return np.array([day.estimation_error for day in self.days], dtype=float)

    @property
    def processed_task_order(self) -> np.ndarray:
        """Global task indices in processing order.

        Aligns with ``task_domain_labels`` (approaches append labels in the
        order the engine feeds them tasks).
        """
        if not self.days:
            return np.zeros(0, dtype=int)
        return np.concatenate([day.task_indices for day in self.days])


def run_simulation(
    dataset,
    approach: Approach,
    config: SimulationConfig = SimulationConfig(),
) -> SimulationResult:
    """Run one approach over one dataset for ``config.n_days`` days.

    ``dataset`` is a :class:`repro.datasets.base.CrowdsourcingDataset`
    (imported lazily here to keep the package import graph acyclic).
    """
    from repro.datasets.base import evenly_distributed_days

    rng = ensure_rng(config.seed)
    schedule_rng, world_rng, approach_seed, adversary_rng, dropout_rng = rng.spawn(5)
    schedule = evenly_distributed_days(dataset.n_tasks, config.n_days, schedule_rng)
    adversaries = None
    if config.adversary_fraction > 0.0:
        from repro.simulation.adversaries import make_adversary_map

        adversaries = make_adversary_map(
            dataset.n_users, config.adversary_fraction, config.adversary_kind, seed=adversary_rng
        )
    world = dataset.world(
        bias_fraction=config.bias_fraction,
        drift_rate=config.drift_rate,
        adversaries=adversaries,
        seed=world_rng,
    )
    approach.begin(dataset, seed=approach_seed)

    true_values = world.true_values()
    base_numbers = world.base_numbers()

    day_records: list = []
    pair_expertise: list = []
    pair_errors: list = []
    for day in range(config.n_days):
        task_indices = np.flatnonzero(schedule == day)
        if task_indices.size == 0:
            continue
        day_tasks = [dataset.tasks[j] for j in task_indices]

        def observe(pairs, _indices=task_indices):
            global_pairs = [(user, int(_indices[task])) for user, task in pairs]
            values = world.observe_pairs(global_pairs)
            if config.dropout_rate > 0.0:
                dropped = dropout_rng.random(len(values)) < config.dropout_rate
                values = [
                    float("nan") if drop else value for value, drop in zip(values, dropped)
                ]
            for (user, task), value in zip(global_pairs, values):
                if np.isnan(value):
                    continue  # dropout: nothing was delivered
                expertise = world.user_expertise_for_task(user, task)
                pair_expertise.append(expertise)
                pair_errors.append((value - true_values[task]) / base_numbers[task])
            return values

        outcome = approach.run_day(day, day_tasks, observe)
        world.advance_day()
        error = normalized_estimation_error(
            outcome.truths, true_values[task_indices], base_numbers[task_indices]
        )
        day_records.append(
            DayRecord(
                day=day,
                task_indices=task_indices,
                estimation_error=error,
                allocation_cost=outcome.allocation_cost,
                pair_count=outcome.assignment.pair_count,
                observations=outcome.observations,
                truths=np.asarray(outcome.truths, dtype=float),
            )
        )

    return SimulationResult(
        approach_name=approach.name,
        dataset_name=dataset.name,
        days=tuple(day_records),
        expertise_snapshot=approach.expertise_snapshot(),
        task_domain_labels=approach.task_domain_labels(),
        mle_iterations=tuple(approach.iteration_counts()),
        observation_expertise=np.asarray(pair_expertise, dtype=float),
        observation_errors=np.asarray(pair_errors, dtype=float),
        adversary_users=tuple(world.adversary_users),
    )
