"""The multi-day simulation driver (Section 6.2's experimental loop).

Tasks are evenly distributed across ``n_days`` days.  Day 0 is the warm-up
period — the approaches allocate randomly because no reliability or
expertise is known yet (each approach handles this internally).  Each day
the engine hands the approach that day's tasks and an ``observe`` callback
wired to the ground-truth world, then scores the returned truth estimates.

Two reliability extensions support chaos testing and crash/restore drills:

- ``config.faults`` wraps the world in a
  :class:`~repro.reliability.chaos.ChaosWorld` and the per-day ``observe``
  callback in a :class:`~repro.reliability.observer.ResilientObserver`
  (shared circuit breaker, virtual clock, sanitizer), so injected
  transport failures degrade days instead of aborting the run;
- ``config.start_day`` / ``config.end_day`` run a *window* of the same
  deterministic schedule, so a run can be split at a crash point and
  resumed (or cold-restarted) over exactly the remaining days.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.reliability.faults import FaultProfile
from repro.rng import ensure_rng
from repro.simulation.approaches import Approach
from repro.simulation.metrics import normalized_estimation_error
from repro.truthdiscovery.base import ObservationMatrix

__all__ = [
    "SimulationConfig",
    "DayRecord",
    "SimulationResult",
    "run_simulation",
    "run_simulation_batch",
    "generate_traffic",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level settings."""

    n_days: int = 5
    bias_fraction: float = 0.0
    #: Std of the per-day Gaussian random walk on hidden user expertise
    #: (0 = the paper's stationary setting).
    drift_rate: float = 0.0
    #: Fraction of users replaced by adversarial behaviour, and its kind
    #: (see :mod:`repro.simulation.adversaries`).
    adversary_fraction: float = 0.0
    adversary_kind: str = "random"
    #: Probability that an assigned user never delivers an observation
    #: (capacity and recruiting cost are still spent).
    dropout_rate: float = 0.0
    seed: "int | None" = None
    #: Deterministic fault injection on the data-collection path (None =
    #: the paper's fault-free transport).  When set, collection runs behind
    #: the resilient-observer wrapper so faults degrade rather than abort.
    faults: "FaultProfile | None" = None
    #: Per-call timeout for the resilient observer, measured on the chaos
    #: layer's virtual clock.  None derives half the injected latency (so
    #: latency faults actually trip the timeout path).
    observer_timeout: "float | None" = None
    #: Day window ``[start_day, end_day)`` of the same deterministic
    #: schedule; ``end_day=None`` means ``n_days``.  Splitting one schedule
    #: across two runs is how crash/restore drills replay "the remaining
    #: days" exactly.
    start_day: int = 0
    end_day: "int | None" = None

    def __post_init__(self):
        if self.n_days < 1:
            raise ValueError("n_days must be at least 1")
        if not 0.0 <= self.bias_fraction <= 1.0:
            raise ValueError("bias_fraction must lie in [0, 1]")
        if self.drift_rate < 0.0:
            raise ValueError("drift_rate must be non-negative")
        if not 0.0 <= self.adversary_fraction <= 1.0:
            raise ValueError("adversary_fraction must lie in [0, 1]")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must lie in [0, 1)")
        if self.observer_timeout is not None and self.observer_timeout <= 0.0:
            raise ValueError("observer_timeout must be positive (or None)")
        if not 0 <= self.start_day < self.n_days:
            raise ValueError("start_day must lie in [0, n_days)")
        if self.end_day is not None and not self.start_day < self.end_day <= self.n_days:
            raise ValueError("end_day must lie in (start_day, n_days]")

    @property
    def last_day(self) -> int:
        """The exclusive end of the simulated day window."""
        return self.n_days if self.end_day is None else self.end_day


@dataclass(frozen=True)
class DayRecord:
    """Per-day outcome."""

    day: int
    task_indices: np.ndarray
    estimation_error: float
    allocation_cost: float
    pair_count: int
    observations: ObservationMatrix
    truths: np.ndarray
    #: Per-phase wall-clock seconds from the approach's pipeline (ETA2
    #: approaches only; None for the baselines).
    timings: "dict | None" = None
    #: Handle on the run's :class:`~repro.observability.RunTracer` (None
    #: when the run was not traced): ``record.trace.events("mle.iteration")``
    #: etc. reads the run's event stream without reaching into the engine.
    trace: "object | None" = None
    #: Users the allocators excluded this day under reputation quarantine.
    excluded_users: tuple = ()
    #: The day's reputation summary / merged guard report (None when the
    #: respective subsystem is off or the approach does not support it).
    reputation: "object | None" = None
    guard_report: "object | None" = None

    @property
    def observed_task_fraction(self) -> float:
        observed = self.observations.mask.any(axis=0)
        return float(np.mean(observed)) if observed.size else 0.0


@dataclass(frozen=True)
class SimulationResult:
    """Full outcome of one simulation run."""

    approach_name: str
    dataset_name: str
    days: tuple
    expertise_snapshot: "dict | None"
    task_domain_labels: "np.ndarray | None"
    mle_iterations: tuple
    #: Hidden per-pair expertise of every collected observation, aligned
    #: with ``all_observation_errors`` (Figs. 2 and 7).
    observation_expertise: np.ndarray
    observation_errors: np.ndarray
    #: Users that were given adversarial behaviour this run (empty tuple in
    #: the paper's honest setting).
    adversary_users: tuple = ()
    #: Resilient-collection counters when ``config.faults`` was set
    #: (retries, timeouts, salvaged pairs, ...); None on fault-free runs.
    observer_report: "object | None" = None
    #: Injected-fault counters from the chaos layer; None on fault-free runs.
    fault_counts: "dict | None" = None
    #: Sanitizer quarantine counters; None on fault-free runs.
    sanitize_report: "object | None" = None
    #: Users under quarantine when the run ended (reputation-enabled ETA2
    #: approaches only; empty otherwise).
    final_quarantined: tuple = ()
    #: Users on probation (served quarantine, under observation) at the end.
    final_probation: tuple = ()
    #: Users quarantined at *any* point during the run — the cumulative
    #: detection record.  Quarantine/probation cycling means the final-day
    #: quarantine set under-reports detections near the horizon.
    ever_quarantined: tuple = ()

    @property
    def mean_estimation_error(self) -> float:
        errors = [day.estimation_error for day in self.days if np.isfinite(day.estimation_error)]
        return float(np.mean(errors)) if errors else float("nan")

    @property
    def final_day_error(self) -> float:
        return self.days[-1].estimation_error

    @property
    def total_cost(self) -> float:
        return float(sum(day.allocation_cost for day in self.days))

    def errors_by_day(self) -> np.ndarray:
        return np.array([day.estimation_error for day in self.days], dtype=float)

    @property
    def processed_task_order(self) -> np.ndarray:
        """Global task indices in processing order.

        Aligns with ``task_domain_labels`` (approaches append labels in the
        order the engine feeds them tasks).
        """
        if not self.days:
            return np.zeros(0, dtype=int)
        return np.concatenate([day.task_indices for day in self.days])

    def fingerprint(self) -> str:
        """SHA-256 over the run's numeric outcome, for equivalence checks.

        Covers the per-day errors, every collected observation (error and
        hidden expertise), the MLE iteration counts, and each day's truth
        estimates byte-for-byte.  Two runs fingerprint identically iff the
        solver produced bit-identical numbers — this is the contract the
        domain-sharded MLE (``--parallel-domains``) is held to against the
        serial solver.
        """
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self.errors_by_day(), dtype=np.float64).tobytes())
        digest.update(np.ascontiguousarray(self.observation_errors, dtype=np.float64).tobytes())
        digest.update(np.ascontiguousarray(self.observation_expertise, dtype=np.float64).tobytes())
        digest.update(np.asarray(self.mle_iterations, dtype=np.int64).tobytes())
        for day in self.days:
            digest.update(np.ascontiguousarray(day.truths, dtype=np.float64).tobytes())
            digest.update(np.asarray(day.allocation_cost, dtype=np.float64).tobytes())
        return digest.hexdigest()


def run_simulation(
    dataset,
    approach: Approach,
    config: SimulationConfig = SimulationConfig(),
    telemetry=None,
) -> SimulationResult:
    """Run one approach over one dataset for ``config.n_days`` days.

    ``dataset`` is a :class:`repro.datasets.base.CrowdsourcingDataset`
    (imported lazily here to keep the package import graph acyclic).

    ``telemetry`` is an optional :class:`~repro.observability.Telemetry`
    bundle: the engine emits ``day.start``/``day.end`` events, hands the
    bundle to the approach (which threads it into its ``ETA2System``),
    attaches the chaos layer's virtual clock to the tracer so timestamps
    are deterministic, and puts the tracer handle on every
    :class:`DayRecord`.  The caller keeps ownership: call
    ``telemetry.finalize()`` after the run to flush exports.
    """
    from repro.datasets.base import evenly_distributed_days

    rng = ensure_rng(config.seed)
    schedule_rng, world_rng, approach_seed, adversary_rng, dropout_rng = rng.spawn(5)
    schedule = evenly_distributed_days(dataset.n_tasks, config.n_days, schedule_rng)
    adversaries = None
    if config.adversary_fraction > 0.0:
        from repro.simulation.adversaries import make_adversary_map

        adversaries = make_adversary_map(
            dataset.n_users, config.adversary_fraction, config.adversary_kind, seed=adversary_rng
        )
    world = dataset.world(
        bias_fraction=config.bias_fraction,
        drift_rate=config.drift_rate,
        adversaries=adversaries,
        seed=world_rng,
    )

    # Chaos + resilience layer: injected faults must degrade days, never
    # abort the run, so collection goes through the resilient observer
    # (shared breaker/report/virtual clock across the whole run).
    chaos = None
    resilience: "dict | None" = None
    if config.faults is not None and config.faults.active:
        from repro.reliability.chaos import ChaosWorld
        from repro.reliability.faults import VirtualClock
        from repro.reliability.observer import CircuitBreaker, ObserverReport, RetryPolicy
        from repro.reliability.sanitize import ObservationSanitizer

        chaos_rng = rng.spawn(1)[0]
        clock = VirtualClock()
        chaos = ChaosWorld(world, config.faults, seed=chaos_rng, clock=clock)
        world = chaos
        timeout = config.observer_timeout
        if timeout is None and config.faults.latency_rate > 0.0 and config.faults.latency > 0.0:
            timeout = config.faults.latency / 2.0
        resilience = {
            # Simulated time: retries are immediate and the breaker
            # half-opens right away — a static virtual clock must never
            # leave the circuit permanently open.
            "retry": RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
            "breaker": CircuitBreaker(failure_threshold=6, recovery_time=0.0, clock=clock),
            "call_timeout": timeout,
            "sanitizer": ObservationSanitizer(),
            "clock": clock,
            "report": ObserverReport(),
        }
    tracer = None
    if telemetry is not None:
        tracer = telemetry.tracer if telemetry.tracer.enabled else None
    if tracer is not None and resilience is not None:
        # Virtual time, not wall time: timestamps advance with injected
        # latency and replay byte-identically.
        tracer.set_clock(resilience["clock"])
    if telemetry is not None:
        approach.attach_telemetry(telemetry)
    approach.begin(dataset, seed=approach_seed)

    true_values = world.true_values()
    base_numbers = world.base_numbers()

    day_records: list = []
    # Per-observe-call ndarray chunks (concatenated once at the end) instead
    # of per-pair Python appends: the accounting below is O(1) array ops per
    # call rather than O(pairs) interpreter work.
    pair_expertise_chunks: list = []
    pair_error_chunks: list = []
    for day in range(config.start_day, config.last_day):
        task_indices = np.flatnonzero(schedule == day)
        if task_indices.size == 0:
            continue
        day_tasks = [dataset.tasks[j] for j in task_indices]

        def observe(pairs, _indices=task_indices):
            # Day-local -> global task translation via one fancy-index pass
            # rather than a per-pair Python comprehension.
            pairs_arr = np.asarray(list(pairs), dtype=int).reshape(-1, 2)
            users = pairs_arr[:, 0]
            tasks = _indices[pairs_arr[:, 1]]
            global_pairs = list(zip(users.tolist(), tasks.tolist()))
            values = np.asarray(world.observe_pairs(global_pairs), dtype=float)
            if config.dropout_rate > 0.0:
                dropped = dropout_rng.random(len(values)) < config.dropout_rate
                values = np.where(dropped, np.nan, values)
            delivered = ~np.isnan(values)
            if np.any(delivered):
                du, dt, dv = users[delivered], tasks[delivered], values[delivered]
                pair_expertise_chunks.append(
                    np.fromiter(
                        (
                            world.user_expertise_for_task(int(user), int(task))
                            for user, task in zip(du, dt)
                        ),
                        dtype=float,
                        count=du.size,
                    )
                )
                pair_error_chunks.append((dv - true_values[dt]) / base_numbers[dt])
            return values.tolist()

        collect = observe
        if resilience is not None:
            from repro.reliability.observer import ResilientObserver

            collect = ResilientObserver(
                observe,
                retry=resilience["retry"],
                breaker=resilience["breaker"],
                call_timeout=resilience["call_timeout"],
                sanitizer=resilience["sanitizer"],
                clock=resilience["clock"],
                sleep=lambda _seconds: None,
                report=resilience["report"],
            )
        if tracer is not None:
            tracer.emit("day.start", day=day, n_tasks=int(task_indices.size))
        outcome = approach.run_day(day, day_tasks, collect)
        world.advance_day()
        error = normalized_estimation_error(
            outcome.truths, true_values[task_indices], base_numbers[task_indices]
        )
        if tracer is not None:
            observed = outcome.observations.mask.any(axis=0)
            tracer.emit(
                "day.end",
                day=day,
                error=float(error),
                cost=float(outcome.allocation_cost),
                pairs=int(outcome.assignment.pair_count),
                coverage=float(np.mean(observed)) if observed.size else 0.0,
            )
        if telemetry is not None and telemetry.metrics is not None:
            telemetry.metrics.counter(
                "repro_days_total", "Simulated days completed."
            ).inc()
            if np.isfinite(error):
                telemetry.metrics.gauge(
                    "repro_estimation_error",
                    "Normalized estimation error of the most recent day.",
                ).set(float(error))
        day_records.append(
            DayRecord(
                day=day,
                task_indices=task_indices,
                estimation_error=error,
                allocation_cost=outcome.allocation_cost,
                pair_count=outcome.assignment.pair_count,
                observations=outcome.observations,
                truths=np.asarray(outcome.truths, dtype=float),
                timings=outcome.timings,
                trace=tracer,
                excluded_users=outcome.excluded_users,
                reputation=outcome.reputation,
                guard_report=outcome.guard_report,
            )
        )

    return SimulationResult(
        approach_name=approach.name,
        dataset_name=dataset.name,
        days=tuple(day_records),
        expertise_snapshot=approach.expertise_snapshot(),
        task_domain_labels=approach.task_domain_labels(),
        mle_iterations=tuple(approach.iteration_counts()),
        observation_expertise=(
            np.concatenate(pair_expertise_chunks) if pair_expertise_chunks else np.zeros(0)
        ),
        observation_errors=(
            np.concatenate(pair_error_chunks) if pair_error_chunks else np.zeros(0)
        ),
        adversary_users=tuple(world.adversary_users),
        observer_report=None if resilience is None else resilience["report"],
        fault_counts=None if chaos is None else chaos.fault_counts,
        sanitize_report=None if resilience is None else resilience["sanitizer"].report,
        final_quarantined=(
            day_records[-1].reputation.quarantined
            if day_records and day_records[-1].reputation is not None
            else ()
        ),
        final_probation=(
            day_records[-1].reputation.probation
            if day_records and day_records[-1].reputation is not None
            else ()
        ),
        ever_quarantined=(
            day_records[-1].reputation.ever_quarantined
            if day_records and day_records[-1].reputation is not None
            else ()
        ),
    )


def generate_traffic(
    n_users: int = 20,
    n_tasks: int = 60,
    n_days: int = 3,
    n_domains: int = 4,
    reporters_per_task: int = 3,
    tau: float = 12.0,
    faults: "FaultProfile | None" = None,
    seed=None,
):
    """Record a replayable traffic trace for the ingestion service.

    Samples a synthetic world (Section 6.1.3 recipe), spreads its tasks
    over ``n_days`` days, draws ``reporters_per_task`` reporting users per
    task, and packages each user's daily reports as one
    :class:`~repro.serve.service.ReportBatch` with a stable ``batch_id``
    — the idempotency key the crash drills rely on.  ``faults`` applies
    the profile's *pair-level* corruption (drops become NaN payloads,
    outliers are displaced) through a
    :class:`~repro.reliability.faults.FaultInjector`, so chaos soaks feed
    the service realistically dirty traffic.  Same seed, same trace —
    the drills replay it bit-identically.

    Returns a :class:`~repro.serve.drill.TrafficTrace` (imported lazily:
    ``repro.serve`` builds on the core pipeline, so the engine must not
    import it at module level).
    """
    from repro.core.pipeline import IncomingTask
    from repro.datasets.base import evenly_distributed_days
    from repro.datasets.synthetic import synthetic_dataset
    from repro.serve.drill import TrafficDay, TrafficTrace
    from repro.serve.service import ReportBatch

    rng = ensure_rng(seed)
    data_rng, schedule_rng, world_rng, pick_rng, fault_rng = rng.spawn(5)
    dataset = synthetic_dataset(
        n_users=n_users, n_tasks=n_tasks, n_domains=n_domains, tau=tau, seed=data_rng
    )
    world = dataset.world(seed=world_rng)
    schedule = evenly_distributed_days(dataset.n_tasks, n_days, schedule_rng)
    injector = None
    if faults is not None and faults.active:
        from repro.reliability.faults import FaultInjector

        injector = FaultInjector(faults, seed=fault_rng)

    capacities = tuple(float(user.capacity) for user in dataset.users)
    reporters = min(int(reporters_per_task), dataset.n_users)
    if reporters < 1:
        raise ValueError("reporters_per_task must be at least 1")
    days = []
    for day in range(n_days):
        task_indices = np.flatnonzero(schedule == day)
        if task_indices.size == 0:
            continue
        tasks = tuple(
            IncomingTask(
                processing_time=dataset.tasks[j].processing_time,
                cost=dataset.tasks[j].cost,
                domain=dataset.tasks[j].true_domain,
            )
            for j in task_indices
        )
        pairs = []
        for local, j in enumerate(task_indices.tolist()):
            for user in pick_rng.choice(dataset.n_users, size=reporters, replace=False):
                pairs.append((int(user), local, int(j)))
        values = np.asarray(
            world.observe_pairs([(user, j) for user, _, j in pairs]), dtype=float
        )
        if injector is not None:
            values = injector.corrupt(values)
        per_user: dict = {}
        for (user, local, _), value in zip(pairs, values.tolist()):
            per_user.setdefault(user, []).append((user, local, value))
        batches = tuple(
            ReportBatch(
                submitter=user,
                day=day,
                reports=tuple(per_user[user]),
                batch_id=f"d{day}-u{user}",
            )
            for user in sorted(per_user)
        )
        days.append(TrafficDay(day=day, tasks=tasks, batches=batches))
        world.advance_day()
    return TrafficTrace(n_users=dataset.n_users, capacities=capacities, days=tuple(days))


def run_simulation_batch(jobs, n_jobs: "int | None" = None) -> list:
    """Run a batch of :class:`~repro.perf.sweep.SimulationJob` cells.

    Thin convenience front-end over :func:`repro.perf.sweep.run_jobs`
    (imported lazily — the sweep module imports this one).  Results come
    back in job order; serial and parallel execution are numerically
    identical.
    """
    from repro.perf.sweep import run_jobs

    return run_jobs(jobs, n_jobs=n_jobs)
