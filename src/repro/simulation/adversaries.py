"""Adversarial user behaviours (failure injection).

The paper's introduction motivates truth analysis with users who
"intentionally generate data instead of performing the task".  This module
models those users so robustness can be measured:

- :class:`ConstantAdversary` — always reports the same value regardless of
  the task (the laziest fabrication),
- :class:`RandomAdversary` — reports a plausible-looking uniform draw from
  the task value range (fabrication that dodges range checks),
- :class:`BiasedAdversary` — performs the task but adds a systematic offset
  of ``bias_sigmas`` base numbers (mis-calibrated or self-interested),
- :class:`ColludingAdversary` — a group that agrees on the *same* wrong
  value per task (truth + offset, deterministic in the task), the attack
  that defeats naive agreement-based weighting.

A behaviour is a callable ``(task_spec, honest_std, rng) -> float``; the
:class:`~repro.simulation.world.World` consults an ``adversaries`` map
before falling back to the honest observation model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rng import ensure_rng
from repro.simulation.entities import TaskSpec

__all__ = [
    "ConstantAdversary",
    "RandomAdversary",
    "BiasedAdversary",
    "ColludingAdversary",
    "make_adversary_map",
    "ADVERSARY_KINDS",
]


@dataclass(frozen=True)
class ConstantAdversary:
    """Reports ``value`` for every task."""

    value: float = 0.0

    def __call__(self, task: TaskSpec, honest_std: float, rng) -> float:
        return float(self.value)


@dataclass(frozen=True)
class RandomAdversary:
    """Reports a uniform draw from ``value_range`` (task-independent)."""

    value_range: "tuple[float, float]" = (0.0, 20.0)

    def __post_init__(self):
        low, high = self.value_range
        if not low < high:
            raise ValueError("value_range must be increasing")

    def __call__(self, task: TaskSpec, honest_std: float, rng) -> float:
        rng = ensure_rng(rng)
        return float(rng.uniform(*self.value_range))


@dataclass(frozen=True)
class BiasedAdversary:
    """Reports an honest observation shifted by ``bias_sigmas`` base numbers."""

    bias_sigmas: float = 2.0

    def __call__(self, task: TaskSpec, honest_std: float, rng) -> float:
        rng = ensure_rng(rng)
        honest = rng.normal(task.true_value, honest_std)
        return float(honest + self.bias_sigmas * task.base_number)


@dataclass(frozen=True)
class ColludingAdversary:
    """All colluders report the *same* wrong value for a given task.

    The reported value is ``truth + offset_sigmas * base_number`` with the
    sign derived deterministically from the task id, so every colluder
    agrees perfectly — the attack that inflates agreement-based credibility.
    """

    offset_sigmas: float = 3.0

    def __call__(self, task: TaskSpec, honest_std: float, rng) -> float:
        sign = 1.0 if task.task_id % 2 == 0 else -1.0
        return float(task.true_value + sign * self.offset_sigmas * task.base_number)


ADVERSARY_KINDS = {
    "constant": lambda: ConstantAdversary(value=0.0),
    "random": lambda: RandomAdversary(),
    "biased": lambda: BiasedAdversary(),
    "colluding": lambda: ColludingAdversary(),
}


def make_adversary_map(n_users: int, fraction: float, kind: str, seed=None) -> dict:
    """Pick ``fraction`` of users uniformly and give them ``kind`` behaviour.

    Returns a ``{user_index: behaviour}`` map for :class:`World`.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    if kind not in ADVERSARY_KINDS:
        raise ValueError(f"unknown adversary kind {kind!r} (choose from {sorted(ADVERSARY_KINDS)})")
    rng = ensure_rng(seed)
    count = int(round(fraction * n_users))
    if count == 0:
        return {}
    chosen = rng.choice(n_users, size=count, replace=False)
    factory = ADVERSARY_KINDS[kind]
    return {int(user): factory() for user in chosen}
