"""Simulation substrate: the crowdsourcing server/user world of Section 2.1.

The paper's system is a server that creates tasks each time step (day),
allocates them to mobile users with limited daily processing capability,
collects noisy observations, and runs truth analysis.  This package
implements that world so every evaluation experiment can run end to end:

- :mod:`repro.simulation.entities` — tasks and users,
- :mod:`repro.simulation.world` — ground truth and observation sampling
  (normal observation model, with the Fig. 8 uniform-bias injection),
- :mod:`repro.simulation.approaches` — the five approaches under comparison
  (ETA2, ETA2-mc, three reliability-based methods, and the mean baseline)
  behind one day-loop interface,
- :mod:`repro.simulation.engine` — the multi-day driver with warm-up,
- :mod:`repro.simulation.metrics` — normalised estimation error, expertise
  error and cost accounting.
"""

from repro.simulation.engine import DayRecord, SimulationConfig, SimulationResult, run_simulation
from repro.simulation.entities import TaskSpec, UserSpec
from repro.simulation.metrics import (
    expertise_estimation_error,
    match_domains,
    normalized_estimation_error,
)
from repro.simulation.world import World

__all__ = [
    "DayRecord",
    "SimulationConfig",
    "SimulationResult",
    "TaskSpec",
    "UserSpec",
    "World",
    "expertise_estimation_error",
    "match_domains",
    "normalized_estimation_error",
    "run_simulation",
]
