"""Evaluation metrics (Section 6.4).

- :func:`normalized_estimation_error` — the paper's headline metric: the
  average of ``|mu_hat_j - mu_j| / sigma_j`` over tasks (tasks with no
  estimate are skipped; coverage is reported separately by the engine).
- :func:`expertise_estimation_error` — Fig. 11's metric: mean absolute error
  between estimated and hidden expertise, after matching the system's
  discovered domains to the generator's true domains.
- :func:`match_domains` — the greedy majority-overlap matching used above.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalized_estimation_error", "match_domains", "expertise_estimation_error"]


def normalized_estimation_error(
    estimates: np.ndarray,
    true_values: np.ndarray,
    base_numbers: np.ndarray,
) -> float:
    """Mean ``|mu_hat - mu| / sigma`` over tasks with a finite estimate.

    Returns ``nan`` when no task has an estimate.
    """
    estimates = np.asarray(estimates, dtype=float)
    true_values = np.asarray(true_values, dtype=float)
    base_numbers = np.asarray(base_numbers, dtype=float)
    if estimates.shape != true_values.shape or estimates.shape != base_numbers.shape:
        raise ValueError("all inputs must have the same shape")
    valid = np.isfinite(estimates)
    if not np.any(valid):
        return float("nan")
    errors = np.abs(estimates[valid] - true_values[valid]) / base_numbers[valid]
    return float(np.mean(errors))


def match_domains(
    estimated_labels: np.ndarray,
    true_labels: np.ndarray,
) -> dict:
    """Greedy matching of discovered domain ids to true domain ids.

    Pairs are matched by descending task-overlap count; each discovered
    domain maps to at most one true domain and vice versa.  Discovered
    domains with no counterpart are left out of the mapping.
    """
    estimated_labels = np.asarray(estimated_labels)
    true_labels = np.asarray(true_labels)
    if estimated_labels.shape != true_labels.shape:
        raise ValueError("label arrays must have the same shape")
    overlaps: list = []
    for estimated in sorted(set(estimated_labels.tolist())):
        mask = estimated_labels == estimated
        for true in sorted(set(true_labels[mask].tolist())):
            count = int(np.sum(mask & (true_labels == true)))
            overlaps.append((count, estimated, true))
    overlaps.sort(key=lambda item: (-item[0], item[1], item[2]))
    mapping: dict = {}
    used_true: set = set()
    for count, estimated, true in overlaps:
        if estimated in mapping or true in used_true or count == 0:
            continue
        mapping[estimated] = true
        used_true.add(true)
    return mapping


def expertise_estimation_error(
    estimated: dict,
    true_matrix: np.ndarray,
    domain_mapping: dict,
) -> float:
    """Mean absolute expertise error over matched (user, domain) pairs.

    ``estimated`` maps discovered domain ids to per-user expertise columns;
    ``domain_mapping`` maps discovered ids to true-domain column indices of
    ``true_matrix``.  Returns ``nan`` when nothing matched.
    """
    true_matrix = np.asarray(true_matrix, dtype=float)
    errors: list = []
    for estimated_id, column in estimated.items():
        true_id = domain_mapping.get(estimated_id)
        if true_id is None:
            continue
        column = np.asarray(column, dtype=float)
        if column.shape != (true_matrix.shape[0],):
            raise ValueError("expertise column has the wrong length")
        errors.append(np.abs(column - true_matrix[:, true_id]))
    if not errors:
        return float("nan")
    return float(np.mean(np.concatenate(errors)))
