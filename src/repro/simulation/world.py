"""The ground-truth world: observation sampling per the Section 2.4 model.

If task *j* (truth ``mu_j``, base number ``sigma_j``) is allocated to user
*i* whose hidden expertise in the task's true domain is ``u``, the observed
value is a draw from ``N(mu_j, (sigma_j / u)^2)``.

For the Fig. 8 robustness experiment a ``bias_fraction`` of observations is
instead drawn from a *uniform* distribution with the same mean and standard
deviation (``mu +- sqrt(3) * sigma/u``), violating the normality assumption
while keeping the first two moments.

``drift_rate`` extends the paper's model with non-stationary expertise: on
every :meth:`World.advance_day` call each user's per-domain expertise takes
a clipped Gaussian random-walk step.  The paper's decay factor ``alpha``
(Eqs. 7-8) exists precisely to track such drift — the drift ablation
benchmark measures that.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.expertise import MIN_EXPERTISE
from repro.rng import ensure_rng
from repro.simulation.entities import TaskSpec, UserSpec

__all__ = ["World"]

_SQRT3 = float(np.sqrt(3.0))


class World:
    """Samples observations from the hidden ground truth."""

    #: Drifted expertise never leaves this range (the synthetic generator's
    #: U[0, 3] support).
    DRIFT_BOUNDS = (0.0, 3.0)

    def __init__(
        self,
        users: Sequence[UserSpec],
        tasks: Sequence[TaskSpec],
        bias_fraction: float = 0.0,
        drift_rate: float = 0.0,
        adversaries: "dict | None" = None,
        seed=None,
    ):
        if not users:
            raise ValueError("world needs at least one user")
        if not tasks:
            raise ValueError("world needs at least one task")
        if not 0.0 <= bias_fraction <= 1.0:
            raise ValueError("bias_fraction must lie in [0, 1]")
        if drift_rate < 0.0:
            raise ValueError("drift_rate must be non-negative")
        self._users = tuple(users)
        self._tasks = tuple(tasks)
        self._bias_fraction = float(bias_fraction)
        self._drift_rate = float(drift_rate)
        self._adversaries = dict(adversaries) if adversaries else {}
        for user in self._adversaries:
            if not 0 <= user < len(self._users):
                raise ValueError(f"adversary index {user} out of range")
        self._rng = ensure_rng(seed)
        self._expertise = np.array([user.expertise for user in self._users], dtype=float)

    @property
    def n_users(self) -> int:
        return len(self._users)

    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    @property
    def users(self) -> tuple:
        return self._users

    @property
    def tasks(self) -> tuple:
        return self._tasks

    def user_expertise_for_task(self, user: int, task: int) -> float:
        """Hidden expertise of ``user`` in ``task``'s true domain, floored."""
        task_spec = self._tasks[task]
        expertise = self._expertise[user, task_spec.true_domain]
        return max(float(expertise), MIN_EXPERTISE)

    def advance_day(self) -> None:
        """Apply one day of expertise drift (no-op at ``drift_rate = 0``)."""
        if self._drift_rate == 0.0:
            return
        step = self._rng.normal(0.0, self._drift_rate, size=self._expertise.shape)
        low, high = self.DRIFT_BOUNDS
        self._expertise = np.clip(self._expertise + step, low, high)

    def observation_std(self, user: int, task: int) -> float:
        """The model's ``sigma_j / u_ij`` for this pair."""
        return self._tasks[task].base_number / self.user_expertise_for_task(user, task)

    @property
    def adversary_users(self) -> list:
        """Indices of adversarial users (sorted)."""
        return sorted(self._adversaries)

    def observe(self, user: int, task: int) -> float:
        """Sample one observation for the pair (normal, or uniform if biased).

        Adversarial users' behaviours override the honest model entirely.
        """
        task_spec = self._tasks[task]
        std = self.observation_std(user, task)
        behaviour = self._adversaries.get(user)
        if behaviour is not None:
            return float(behaviour(task_spec, std, self._rng))
        if self._bias_fraction > 0.0 and self._rng.random() < self._bias_fraction:
            half_width = _SQRT3 * std
            return float(self._rng.uniform(task_spec.true_value - half_width, task_spec.true_value + half_width))
        return float(self._rng.normal(task_spec.true_value, std))

    def observe_pairs(self, pairs: Sequence) -> list:
        """Observations for a batch of ``(user, task)`` pairs."""
        return [self.observe(user, task) for user, task in pairs]

    def true_values(self) -> np.ndarray:
        return np.array([task.true_value for task in self._tasks], dtype=float)

    def base_numbers(self) -> np.ndarray:
        return np.array([task.base_number for task in self._tasks], dtype=float)

    def true_domains(self) -> np.ndarray:
        return np.array([task.true_domain for task in self._tasks], dtype=int)

    def processing_times(self) -> np.ndarray:
        return np.array([task.processing_time for task in self._tasks], dtype=float)

    def costs(self) -> np.ndarray:
        return np.array([task.cost for task in self._tasks], dtype=float)

    def capacities(self) -> np.ndarray:
        return np.array([user.capacity for user in self._users], dtype=float)

    def true_expertise_matrix(self) -> np.ndarray:
        """Hidden ``(n_users, n_true_domains)`` expertise matrix.

        Reflects any drift applied so far (a copy; mutating it does not
        affect the world).
        """
        return self._expertise.copy()
