"""The five approaches under comparison, behind one day-loop interface.

Each approach receives one day's newly created tasks, decides the
allocation (driving data collection through an ``observe`` callback so the
iterative min-cost variant works too), and returns its truth estimates for
those tasks.  The engine never peeks inside: ETA2 proper, ETA2-mc, the three
reliability-based methods and the random/mean baseline all plug in here.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.allocation.base import DEFAULT_EPSILON, AllocationProblem, Assignment
from repro.core.allocation.baselines import RandomAllocator, ReliabilityGreedyAllocator
from repro.core.expertise import DEFAULT_EXPERTISE
from repro.core.pipeline import ETA2System, IncomingTask

from repro.semantics.embeddings.base import EmbeddingModel
from repro.truthdiscovery.base import ObservationMatrix, TruthDiscovery

__all__ = ["Approach", "DayOutcome", "ETA2Approach", "ReliabilityApproach", "MeanApproach"]


@dataclass(frozen=True)
class DayOutcome:
    """What an approach produced for one day's tasks."""

    assignment: Assignment
    observations: ObservationMatrix
    truths: np.ndarray
    allocation_cost: float
    #: Per-phase wall-clock seconds (ETA2 approaches only; None otherwise).
    timings: "dict | None" = None
    #: Users excluded from allocation because the reputation tracker had
    #: them quarantined (ETA2 approaches with reputation enabled only).
    excluded_users: tuple = ()
    #: The day's :class:`~repro.reliability.reputation.ReputationSummary`
    #: (None unless reputation tracking is on).
    reputation: "object | None" = None
    #: The day's merged :class:`~repro.reliability.guards.GuardReport`
    #: (None unless guards are on).
    guard_report: "object | None" = None


class Approach(abc.ABC):
    """One truth-analysis + task-allocation strategy."""

    name: str = "approach"

    @abc.abstractmethod
    def begin(self, dataset, seed) -> None:
        """Reset internal state for a fresh simulation run."""

    def attach_telemetry(self, telemetry) -> None:
        """Accept the run's :class:`~repro.observability.Telemetry` bundle.

        Called by the engine before :meth:`begin`.  The base class ignores
        it (baselines have no internals worth tracing); ETA2 approaches
        thread it into their :class:`ETA2System`.
        """

    @abc.abstractmethod
    def run_day(
        self,
        day: int,
        tasks: Sequence,
        observe: Callable,
    ) -> DayOutcome:
        """Process one day's tasks; ``observe(pairs)`` collects data."""

    def expertise_snapshot(self) -> "dict | None":
        """Discovered per-domain expertise (ETA2 only); None otherwise."""
        return None

    def task_domain_labels(self) -> "np.ndarray | None":
        """Discovered domain label per processed task (ETA2 only)."""
        return None

    def iteration_counts(self) -> list:
        """MLE iteration counts per day (empty for baselines)."""
        return []


class ETA2Approach(Approach):
    """ETA2 (max-quality) or ETA2-mc (min-cost), via :class:`ETA2System`."""

    def __init__(
        self,
        gamma: float = 0.5,
        alpha: float = 0.5,
        epsilon: float = DEFAULT_EPSILON,
        allocator: str = "max-quality",
        min_cost_round_budget: float = 100.0,
        min_cost_error_limit: float = 0.5,
        min_cost_confidence: float = 0.95,
        extra_greedy_pass: bool = True,
        exploration_rate: float = 0.0,
        embedding: "EmbeddingModel | None" = None,
        use_clustering: "bool | None" = None,
        checkpoint_dir=None,
        checkpoint_keep: int = 3,
        resume: bool = False,
        robust=None,
        reputation: "bool | object" = False,
        guards: "str | None" = None,
        parallel_domains: int = 0,
    ):
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        self.name = "ETA2" if allocator == "max-quality" else "ETA2-mc"
        self._gamma = gamma
        self._alpha = alpha
        self._epsilon = epsilon
        self._allocator = allocator
        self._round_budget = min_cost_round_budget
        self._error_limit = min_cost_error_limit
        self._confidence = min_cost_confidence
        self._extra_pass = extra_greedy_pass
        self._exploration_rate = exploration_rate
        self._embedding = embedding
        #: None -> decided by the dataset (cluster iff domains are unknown);
        #: True/False forces it (ablations: oracle domains vs clustering).
        self._use_clustering = use_clustering
        #: Crash-safe persistence: checkpoint after every completed day,
        #: and (with resume=True) recover the newest valid checkpoint when
        #: the simulation begins — the server-restart scenario.
        self._checkpoint_dir = checkpoint_dir
        self._checkpoint_keep = checkpoint_keep
        self._resume = resume
        #: Byzantine hardening (all optional): a RobustConfig for the MLE,
        #: reputation tracking (True for defaults or a ReputationConfig),
        #: and an invariant-guard policy ("warn"/"raise"/"repair").
        self._robust = robust
        self._reputation = reputation
        self._guards = guards
        #: >= 1 shards the per-day MLE by expertise domain (bit-identical
        #: to the serial solver; see repro.core.parallel).
        self._parallel_domains = parallel_domains
        self._system: "ETA2System | None" = None
        self._labels: list = []
        self._telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        self._telemetry = telemetry
        if self._system is not None:
            self._system.enable_telemetry(
                tracer=telemetry.tracer,
                metrics=telemetry.metrics,
                manifest=telemetry.manifest,
            )

    def begin(self, dataset, seed) -> None:
        self._dataset = dataset
        cluster = (not dataset.domains_known) if self._use_clustering is None else self._use_clustering
        if cluster and any(task.description is None for task in dataset.tasks):
            raise ValueError("clustering requested but the dataset has no task descriptions")
        self._cluster = cluster
        self._system = ETA2System(
            n_users=dataset.n_users,
            capacities=[user.capacity for user in dataset.users],
            gamma=self._gamma,
            alpha=self._alpha,
            epsilon=self._epsilon,
            allocator=self._allocator,
            embedding=self._embedding,
            min_cost_round_budget=self._round_budget,
            min_cost_error_limit=self._error_limit,
            min_cost_confidence=self._confidence,
            extra_greedy_pass=self._extra_pass,
            exploration_rate=self._exploration_rate,
            robust=self._robust,
            seed=seed,
            parallel_domains=self._parallel_domains,
        )
        if self._telemetry is not None:
            # Before the other subsystems so guards/checkpointing pick the
            # telemetry up as they are enabled.
            self._system.enable_telemetry(
                tracer=self._telemetry.tracer,
                metrics=self._telemetry.metrics,
                manifest=self._telemetry.manifest,
            )
        if self._reputation:
            self._system.enable_reputation(
                None if self._reputation is True else self._reputation
            )
        if self._guards is not None:
            self._system.enable_guards(policy=self._guards)
        if self._checkpoint_dir is not None:
            self._system.enable_checkpointing(self._checkpoint_dir, keep=self._checkpoint_keep)
            if self._resume:
                self._system.restore_latest()
        self._labels = []

    def _incoming(self, tasks: Sequence) -> list:
        incoming = []
        for task in tasks:
            if self._cluster:
                incoming.append(
                    IncomingTask(
                        processing_time=task.processing_time,
                        cost=task.cost,
                        description=task.description,
                    )
                )
            else:
                incoming.append(
                    IncomingTask(
                        processing_time=task.processing_time,
                        cost=task.cost,
                        domain=task.true_domain,
                    )
                )
        return incoming

    def run_day(self, day: int, tasks: Sequence, observe: Callable) -> DayOutcome:
        incoming = self._incoming(tasks)
        if not self._system.is_warmed_up:
            result = self._system.warmup(incoming, observe)
        else:
            result = self._system.step(incoming, observe)
        self._labels.extend(result.task_domains.tolist())
        return DayOutcome(
            assignment=result.assignment,
            observations=result.observations,
            truths=result.truths,
            allocation_cost=result.allocation_cost,
            timings=result.timings,
            excluded_users=result.excluded_users,
            reputation=result.reputation,
            guard_report=result.guard_report,
        )

    def expertise_snapshot(self) -> dict:
        return self._system.expertise_matrix().as_dict()

    def task_domain_labels(self) -> np.ndarray:
        return np.asarray(self._labels, dtype=int)

    def iteration_counts(self) -> list:
        return list(self._system.iteration_log)


class ReliabilityApproach(Approach):
    """A reliability-based truth-discovery method plus reliability-greedy
    allocation (the paper's comparison recipe, Section 6.3)."""

    def __init__(self, method: TruthDiscovery):
        self._method = method
        self.name = method.name
        self._reliabilities: "np.ndarray | None" = None
        self._random: "RandomAllocator | None" = None
        self._cumulative_values: "np.ndarray | None" = None
        self._cumulative_mask: "np.ndarray | None" = None
        self._capacities: "np.ndarray | None" = None

    def begin(self, dataset, seed) -> None:
        self._reliabilities = None
        self._random = RandomAllocator(seed=seed)
        self._capacities = np.array([user.capacity for user in dataset.users], dtype=float)
        self._cumulative_values = np.zeros((dataset.n_users, 0), dtype=float)
        self._cumulative_mask = np.zeros((dataset.n_users, 0), dtype=bool)

    def run_day(self, day: int, tasks: Sequence, observe: Callable) -> DayOutcome:
        n_users = self._capacities.shape[0]
        times = np.array([task.processing_time for task in tasks], dtype=float)
        costs = np.array([task.cost for task in tasks], dtype=float)
        problem = AllocationProblem(
            expertise=np.full((n_users, len(tasks)), DEFAULT_EXPERTISE),
            processing_times=times,
            capacities=self._capacities,
            costs=costs,
        )
        if self._reliabilities is None:
            assignment = self._random.allocate(problem)
        else:
            assignment = ReliabilityGreedyAllocator(self._reliabilities).allocate(problem)

        pairs = assignment.pairs()
        values = np.zeros((n_users, len(tasks)), dtype=float)
        mask = assignment.matrix.copy()
        if pairs:
            observed = np.asarray(observe(pairs), dtype=float)
            for (user, task), value in zip(pairs, observed):
                if np.isnan(value):
                    mask[user, task] = False  # dropout: no response arrived
                else:
                    values[user, task] = value
        observations = ObservationMatrix(values=values, mask=mask)

        # Estimate on everything collected so far; reliabilities carry over.
        self._cumulative_values = np.hstack([self._cumulative_values, values])
        self._cumulative_mask = np.hstack([self._cumulative_mask, assignment.matrix])
        cumulative = ObservationMatrix(values=self._cumulative_values, mask=self._cumulative_mask)
        estimate = self._method.estimate(cumulative)
        self._reliabilities = estimate.reliabilities
        day_truths = estimate.truths[-len(tasks):]
        return DayOutcome(
            assignment=assignment,
            observations=observations,
            truths=day_truths,
            allocation_cost=assignment.total_cost(costs),
        )


class MeanApproach(Approach):
    """The paper's lower-bound Baseline: random allocation, mean estimate."""

    name = "baseline-mean"

    def __init__(self):
        self._random: "RandomAllocator | None" = None
        self._capacities: "np.ndarray | None" = None

    def begin(self, dataset, seed) -> None:
        self._random = RandomAllocator(seed=seed)
        self._capacities = np.array([user.capacity for user in dataset.users], dtype=float)

    def run_day(self, day: int, tasks: Sequence, observe: Callable) -> DayOutcome:
        n_users = self._capacities.shape[0]
        times = np.array([task.processing_time for task in tasks], dtype=float)
        costs = np.array([task.cost for task in tasks], dtype=float)
        problem = AllocationProblem(
            expertise=np.full((n_users, len(tasks)), DEFAULT_EXPERTISE),
            processing_times=times,
            capacities=self._capacities,
            costs=costs,
        )
        assignment = self._random.allocate(problem)
        pairs = assignment.pairs()
        values = np.zeros((n_users, len(tasks)), dtype=float)
        mask = assignment.matrix.copy()
        if pairs:
            observed = np.asarray(observe(pairs), dtype=float)
            for (user, task), value in zip(pairs, observed):
                if np.isnan(value):
                    mask[user, task] = False  # dropout: no response arrived
                else:
                    values[user, task] = value
        observations = ObservationMatrix(values=values, mask=mask)
        return DayOutcome(
            assignment=assignment,
            observations=observations,
            truths=observations.task_means(),
            allocation_cost=assignment.total_cost(costs),
        )
