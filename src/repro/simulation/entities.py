"""Tasks and users of the simulated crowdsourcing system."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TaskSpec", "UserSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """One sensing task.

    ``true_domain`` is the *generator's* domain label — hidden from the
    algorithms for text datasets (which must cluster descriptions), exposed
    for the synthetic dataset (whose domains are pre-known per Section
    6.1.3).  ``true_value``/``base_number`` are the ground truth used to
    sample observations and score estimates.
    """

    task_id: int
    true_value: float
    base_number: float
    processing_time: float
    cost: float = 1.0
    description: "str | None" = None
    true_domain: int = 0

    def __post_init__(self):
        if self.base_number <= 0:
            raise ValueError("base_number must be positive")
        if self.processing_time <= 0:
            raise ValueError("processing_time must be positive")
        if self.cost < 0:
            raise ValueError("cost must be non-negative")


@dataclass(frozen=True)
class UserSpec:
    """One mobile user.

    ``expertise`` is the hidden per-domain expertise vector used by the
    world to sample this user's observation noise; algorithms never see it
    (except the Fig. 11 evaluation, which compares estimates against it).
    """

    user_id: int
    expertise: tuple
    capacity: float

    def __post_init__(self):
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")
        if any(u < 0 for u in self.expertise):
            raise ValueError("expertise must be non-negative")
