"""Phase-boundary invariant guards for the ETA2 closed loop.

The closed loop feeds each phase's output straight into the next phase's
input, so a single non-finite truth or a zero base number does not stay
local: it poisons the Eq. 7-8 sums, which poisons expertise, which poisons
every later day's allocation.  The estimators carry their own local guards
(sigma floor, expertise clamp); this module adds the *boundary* checks —
executable statements of what each phase is entitled to assume about the
previous one — with a configurable response:

- ``"warn"`` (default): log and record the violation, pass data through
  untouched.  For monitoring production-like runs.
- ``"raise"``: raise :class:`InvariantViolationError` immediately.  For
  tests and debugging, where a poisoned value should fail loudly at its
  source instead of three phases later.
- ``"repair"``: substitute a safe value (NaN truth → stays missing but
  its sigma is floored; non-positive sigma → floor; out-of-range or
  non-finite expertise → clamped / default) and record what was done.
  For keep-the-loop-alive deployments.

Checks are pure numpy predicates — no RNG, no wall clock — so enabling
them never perturbs results beyond the repairs they report.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.expertise import (
    DEFAULT_EXPERTISE,
    MAX_EXPERTISE,
    MIN_EXPERTISE,
    clamp_expertise,
)
from repro.core.truth import SIGMA_FLOOR

__all__ = [
    "GuardConfig",
    "GuardReport",
    "GuardViolation",
    "InvariantGuard",
    "InvariantViolationError",
]

_LOG = logging.getLogger(__name__)

_POLICIES = ("warn", "raise", "repair")


class InvariantViolationError(RuntimeError):
    """A phase-boundary invariant failed under the ``"raise"`` policy."""


@dataclass(frozen=True)
class GuardConfig:
    """Policy and numeric bounds for :class:`InvariantGuard`."""

    policy: str = "warn"
    sigma_floor: float = SIGMA_FLOOR
    min_expertise: float = MIN_EXPERTISE
    max_expertise: float = MAX_EXPERTISE

    def __post_init__(self):
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        if self.sigma_floor <= 0.0:
            raise ValueError("sigma_floor must be positive")
        if not 0.0 < self.min_expertise <= self.max_expertise:
            raise ValueError("expertise bounds must satisfy 0 < min <= max")


@dataclass(frozen=True)
class GuardViolation:
    """One failed invariant: which check, where, and how many entries."""

    check: str
    phase: str
    count: int
    detail: str

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "phase": self.phase,
            "count": self.count,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class GuardReport:
    """Violations found (and possibly repaired) at one or more boundaries."""

    violations: tuple = ()
    repaired: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violation_count(self) -> int:
        return sum(v.count for v in self.violations)

    def to_dict(self) -> dict:
        return {
            "repaired": self.repaired,
            "violations": [v.to_dict() for v in self.violations],
        }

    @staticmethod
    def merge(reports) -> "GuardReport":
        reports = [r for r in reports if r is not None]
        violations = tuple(v for r in reports for v in r.violations)
        return GuardReport(
            violations=violations, repaired=any(r.repaired for r in reports)
        )


class InvariantGuard:
    """Checks the loop's phase-boundary invariants under one policy."""

    def __init__(self, config: "GuardConfig | None" = None, tracer=None):
        self.config = config if config is not None else GuardConfig()
        # An enabled RunTracer receives one guard.violation event per
        # violation (check name, phase, count) alongside the log warning.
        self.tracer = tracer

    # ------------------------------------------------------------------

    def _handle(self, violations: list, repaired: bool) -> GuardReport:
        report = GuardReport(violations=tuple(violations), repaired=repaired)
        if not violations:
            return report
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            for violation in violations:
                tracer.emit(
                    "guard.violation",
                    check=violation.check,
                    phase=violation.phase,
                    count=violation.count,
                    detail=violation.detail,
                    repaired=repaired,
                )
        message = "; ".join(f"{v.phase}/{v.check}: {v.detail}" for v in violations)
        if self.config.policy == "raise":
            raise InvariantViolationError(message)
        _LOG.warning(
            "invariant violation%s (%s): %s",
            "s" if len(violations) > 1 else "",
            "repaired" if repaired else "unrepaired",
            message,
        )
        return report

    # ------------------------------------------------------------------

    def check_truths(
        self,
        truths: np.ndarray,
        sigmas: np.ndarray,
        observed: "np.ndarray | None" = None,
        phase: str = "truth",
    ) -> "tuple[np.ndarray, np.ndarray, GuardReport]":
        """Truth-analysis outputs: finite truths where observed, sigma > 0.

        ``observed`` is the per-task had-any-observation mask; without it,
        NaN truths are presumed legitimate missing markers and only
        infinities count as violations.
        """
        truths = np.asarray(truths, dtype=float)
        sigmas = np.asarray(sigmas, dtype=float)
        violations = []

        if observed is not None:
            bad_truths = ~np.isfinite(truths) & np.asarray(observed, dtype=bool)
        else:
            bad_truths = np.isinf(truths)
        if np.any(bad_truths):
            violations.append(
                GuardViolation(
                    check="finite_truths",
                    phase=phase,
                    count=int(bad_truths.sum()),
                    detail=f"{int(bad_truths.sum())} non-finite truth(s) "
                    f"at tasks {np.flatnonzero(bad_truths)[:5].tolist()}",
                )
            )
        bad_sigmas = ~np.isfinite(sigmas) | (sigmas <= 0.0)
        if np.any(bad_sigmas):
            violations.append(
                GuardViolation(
                    check="positive_sigmas",
                    phase=phase,
                    count=int(bad_sigmas.sum()),
                    detail=f"{int(bad_sigmas.sum())} non-positive/non-finite "
                    f"sigma(s) at tasks {np.flatnonzero(bad_sigmas)[:5].tolist()}",
                )
            )

        repaired = False
        if violations and self.config.policy == "repair":
            truths = truths.copy()
            sigmas = sigmas.copy()
            # A corrupt truth cannot be reconstructed here — demote it to
            # the pipeline's standard missing marker so downstream sums
            # skip it instead of ingesting an infinity.
            truths[bad_truths] = np.nan
            sigmas[bad_sigmas] = self.config.sigma_floor
            repaired = True
        report = self._handle(violations, repaired)
        return truths, sigmas, report

    def check_expertise(
        self, expertise: np.ndarray, phase: str = "update"
    ) -> "tuple[np.ndarray, GuardReport]":
        """Expertise estimates: finite and inside the documented clamp."""
        expertise = np.asarray(expertise, dtype=float)
        violations = []
        non_finite = ~np.isfinite(expertise)
        # Tiny tolerance: the clamp itself writes exactly min/max, so only
        # genuinely escaped values should trip.
        out_of_range = np.isfinite(expertise) & (
            (expertise < self.config.min_expertise * (1 - 1e-12))
            | (expertise > self.config.max_expertise * (1 + 1e-12))
        )
        if np.any(non_finite):
            violations.append(
                GuardViolation(
                    check="finite_expertise",
                    phase=phase,
                    count=int(non_finite.sum()),
                    detail=f"{int(non_finite.sum())} non-finite expertise value(s)",
                )
            )
        if np.any(out_of_range):
            violations.append(
                GuardViolation(
                    check="bounded_expertise",
                    phase=phase,
                    count=int(out_of_range.sum()),
                    detail=f"{int(out_of_range.sum())} expertise value(s) outside "
                    f"[{self.config.min_expertise}, {self.config.max_expertise}]",
                )
            )
        repaired = False
        if violations and self.config.policy == "repair":
            expertise = expertise.copy()
            expertise[non_finite] = DEFAULT_EXPERTISE
            expertise = clamp_expertise(expertise)
            repaired = True
        report = self._handle(violations, repaired)
        return expertise, report

    def check_partition(
        self,
        task_domains: np.ndarray,
        known_domains,
        phase: str = "identify",
    ) -> GuardReport:
        """Cluster output: every task labelled with a known domain id.

        Partitions have no safe in-place repair (inventing a label would
        silently misroute expertise), so the ``"repair"`` policy degrades
        to ``"warn"`` here; ``"raise"`` still raises.
        """
        task_domains = np.asarray(task_domains)
        known = set(known_domains)
        violations = []
        if task_domains.ndim != 1:
            # A misshapen label array cannot be scanned for unknown labels
            # (and would make every per-task lookup wrong anyway).
            violations.append(
                GuardViolation(
                    check="valid_partition",
                    phase=phase,
                    count=1,
                    detail=f"labels must be one per task, got shape {task_domains.shape}",
                )
            )
            return self._handle(violations, repaired=False)
        unknown = [d for d in dict.fromkeys(task_domains.tolist()) if d not in known]
        if unknown:
            violations.append(
                GuardViolation(
                    check="valid_partition",
                    phase=phase,
                    count=sum(int(np.sum(task_domains == d)) for d in unknown),
                    detail=f"task labels {unknown[:5]} not among the known domains",
                )
            )
        return self._handle(violations, repaired=False)
