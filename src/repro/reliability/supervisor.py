"""Crash-tolerant supervised execution for sweep jobs.

The parallel sweep layer (:func:`repro.perf.sweep.run_jobs`) is a bare
``ProcessPoolExecutor.map``: one worker OOM/segfault raises
``BrokenProcessPool`` and discards every completed replication of a
Fig. 4/5/6 grid, a hung MLE job stalls the sweep forever, and a killed
sweep restarts from zero.  :class:`SupervisedExecutor` wraps the same job
model (anything with a ``.run()`` method, canonically
:class:`~repro.perf.sweep.SimulationJob`) with production-grade fault
handling while keeping results *bit-identical* to serial ``run_jobs``:

- **crash detection** — a worker death breaks the pool; every job that was
  in flight is charged one ``crash`` attempt (the culprit is not
  identifiable from the parent) and resubmitted to a rebuilt pool.
  Completed results are never discarded.
- **per-job deadlines** — enforced *inside* each worker with a
  ``SIGALRM`` itimer (POSIX itimers reset on fork, so neither the
  parent's pytest timeout plugin nor stale timers leak in), raising
  :class:`JobTimeout` which the worker reports as a structured outcome.
- **hung-worker watchdog** — a worker that outlives
  ``job_timeout + watchdog_grace`` on the parent clock (a hang that blocks
  or ignores ``SIGALRM``) is SIGKILLed with its pool; the overdue job is
  charged a ``watchdog`` attempt, innocent in-flight jobs resubmit free.
- **deterministic retries** — failed jobs back off per the shared
  :class:`~repro.reliability.retry.RetryPolicy` (jitter keyed on the job
  key, so retry timing replays).
- **dead-letter quarantine** — a job failing ``max_attempts`` times
  becomes a :class:`DeadLetter` (exception class, traceback, full attempt
  timeline) instead of failing the sweep; its result slot is ``None``.
- **graceful shutdown** — SIGINT/SIGTERM stop new submissions, drain
  in-flight jobs, journal them, and raise :class:`SweepInterrupted`
  (a ``KeyboardInterrupt`` carrying the partial result).  A second signal
  aborts immediately.
- **durable run journal** — every outcome appends one canonical-JSON line
  (results carried as checksummed pickles) to a JSONL journal, written
  line-buffered so a crash truncates at most the final line — which
  :func:`read_journal` tolerates, exactly like
  :func:`repro.observability.summarize.read_trace`.  Resuming from a
  journal skips completed jobs and reproduces the identical result list.

Determinism: every job's seeds are self-contained (see
:class:`~repro.perf.sweep.SimulationJob`), so a retried attempt reruns the
same pure function; supervision changes *when and where* jobs run, never
what they compute.
"""

from __future__ import annotations

import base64
import hashlib
import heapq
import logging
import os
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.observability.tracer import canonical_json
from repro.reliability.faults import FaultError, SimulatedCrash, WorkerFaultProfile
from repro.reliability.retry import RetryPolicy

__all__ = [
    "JOURNAL_VERSION",
    "JobTimeout",
    "SweepInterrupted",
    "Attempt",
    "DeadLetter",
    "SupervisedStats",
    "SupervisedResult",
    "SupervisorConfig",
    "SupervisedExecutor",
    "job_key",
    "read_journal",
    "load_journal_results",
]

_LOG = logging.getLogger(__name__)

JOURNAL_VERSION = 1

#: Exit code used by injected worker kills (recognizable in ps/wait output).
_KILL_EXIT_CODE = 137


class JobTimeout(RuntimeError):
    """A supervised job exceeded its per-job deadline."""


class SweepInterrupted(KeyboardInterrupt):
    """A supervised sweep was stopped by SIGINT/SIGTERM after draining.

    Subclasses :class:`KeyboardInterrupt` so generic ``except Exception``
    recovery code does not swallow an operator's interrupt.  ``partial``
    holds the :class:`SupervisedResult` at shutdown; with a journal
    attached, rerunning with ``resume_journal`` completes the remainder.
    """

    def __init__(self, partial: "SupervisedResult"):
        completed = partial.stats.completed + partial.stats.resumed
        super().__init__(
            f"sweep interrupted after {completed}/{len(partial.results)} jobs"
        )
        self.partial = partial


# --------------------------------------------------------------------- #
# Job identity
# --------------------------------------------------------------------- #


def _fingerprint(value):
    """JSON-coercible identity view of a job (dataclasses recurse)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _fingerprint(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, (list, tuple)):
        return [_fingerprint(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _fingerprint(v) for k, v in value.items()}
    return repr(value)


def job_key(job) -> str:
    """A stable 16-hex-digit fingerprint of a job's full identity.

    Two jobs share a key iff their dataclass fields (dataset, approach
    spec, config, replication, bias, tag) are equal — the property journal
    resume matches on, so a journal survives reordering of the job list.
    """
    text = canonical_json({"job": _fingerprint(job)})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------- #
# Outcome records
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Attempt:
    """One entry of a job's attempt timeline."""

    number: int
    outcome: str  # "ok" | "error" | "timeout" | "crash" | "watchdog"
    error_class: "str | None" = None
    message: "str | None" = None

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class DeadLetter:
    """A job quarantined after exhausting ``max_attempts``."""

    index: int
    key: str
    error_class: str
    message: str
    traceback: str
    attempts: tuple

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "key": self.key,
            "error_class": self.error_class,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": [attempt.as_dict() for attempt in self.attempts],
        }


@dataclass
class SupervisedStats:
    """Counters for one supervised run."""

    completed: int = 0
    resumed: int = 0
    retries: int = 0
    worker_restarts: int = 0
    dead_lettered: int = 0
    timeouts: int = 0
    crashes: int = 0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class SupervisedResult:
    """Everything a supervised sweep produced.

    ``results`` aligns with the submitted job list; dead-lettered jobs
    leave ``None`` holes (callers aggregating figure grids skip them).
    """

    results: list
    dead_letters: list
    stats: SupervisedStats
    journal_path: "Path | None" = None

    @property
    def ok(self) -> bool:
        return not self.dead_letters


# --------------------------------------------------------------------- #
# Journal
# --------------------------------------------------------------------- #


def read_journal(path: "str | Path") -> list:
    """Load a JSONL run journal, tolerating a truncated final line.

    Mirrors :func:`repro.observability.summarize.read_trace`: a crash (or
    SIGKILL) mid-append truncates at most the last line, which is replaced
    by a ``journal.truncated`` marker; corruption anywhere else raises.
    """
    import json

    records: list = []
    lines = Path(path).read_text().splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines):
                records.append({"type": "journal.truncated", "line": lineno})
                break
            raise ValueError(f"journal line {lineno} is not valid JSON") from None
    return records


def load_journal_results(path: "str | Path") -> dict:
    """Completed results from a journal, keyed by job key.

    Returns ``{key: deque of results in journal order}`` (a deque per key
    so duplicate jobs in one list resume one-for-one).  Records whose
    pickled payload fails its SHA-256 checksum are skipped with a warning —
    the affected job simply reruns.
    """
    completed: dict = {}
    for record in read_journal(path):
        if record.get("type") != "job.complete":
            continue
        blob = record.get("result")
        stored = record.get("sha256")
        key = record.get("key")
        if not (isinstance(blob, str) and isinstance(stored, str) and isinstance(key, str)):
            _LOG.warning("journal %s: malformed job.complete record skipped", path)
            continue
        try:
            data = base64.b64decode(blob.encode("ascii"), validate=True)
        except (ValueError, UnicodeEncodeError):
            _LOG.warning("journal %s: undecodable result payload for job %s", path, key)
            continue
        if hashlib.sha256(data).hexdigest() != stored:
            _LOG.warning(
                "journal %s: checksum mismatch for job %s; it will be rerun", path, key
            )
            continue
        completed.setdefault(key, deque()).append(pickle.loads(data))
    return completed


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


def _error_info(error: BaseException) -> dict:
    return {
        "error_class": type(error).__name__,
        "message": str(error),
        "traceback": traceback.format_exc(),
    }


def _run_with_deadline(thunk: Callable, timeout: "float | None", preemptive: bool):
    """Run ``thunk`` under a deadline.

    ``preemptive=True`` (worker processes) arms a ``SIGALRM`` itimer that
    raises :class:`JobTimeout` mid-call.  ``preemptive=False`` (serial
    mode, where the alarm would clobber the host's — e.g. pytest's — timer)
    falls back to a cooperative elapsed-time check after the call returns.
    """
    if timeout is None:
        return thunk()
    use_alarm = (
        preemptive
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        start = time.monotonic()
        result = thunk()
        if time.monotonic() - start > timeout:
            raise JobTimeout(f"job exceeded its {timeout:g}s deadline (measured after return)")
        return result

    def _expired(signum, frame):
        raise JobTimeout(f"job exceeded its {timeout:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return thunk()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _apply_worker_fault(faults: "WorkerFaultProfile | None", key: str, attempt: int, in_worker: bool):
    """Roll and apply the injected fault for one attempt (chaos harness)."""
    if faults is None:
        return
    action = faults.action(key, attempt)
    if action is None:
        return
    if action == "kill":
        if in_worker:
            os._exit(_KILL_EXIT_CODE)  # an abrupt worker death, not an exception
        raise SimulatedCrash(f"injected worker kill for job {key} (raised in serial mode)")
    if action == "hang":
        if in_worker and faults.hard_hang and hasattr(signal, "pthread_sigmask"):
            # A hang the in-worker alarm cannot reach: only the parent
            # watchdog reclaims this worker.
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        time.sleep(faults.hang_seconds)
        return
    raise FaultError(f"injected worker fault for job {key} attempt {attempt}")


def _worker_initializer() -> None:
    """Reset signal dispositions in a fresh worker.

    Forked workers inherit the parent's handlers, including the
    supervisor's drain-on-SIGINT/SIGTERM handler — which must not run in a
    worker (a worker told to terminate would "drain" instead of dying).
    Workers ignore SIGINT (the parent coordinates the drain and lets
    in-flight jobs finish) and die by default on SIGTERM (what the pool's
    own broken-pool cleanup sends).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError, AttributeError):  # pragma: no cover — platform quirks
        pass


def _supervised_worker(payload: tuple) -> tuple:
    """Top-level worker entry point (must be picklable by reference).

    Returns ``(index, status, payload)`` where status is ``"ok"`` (payload
    is the job's result), ``"timeout"``, or ``"error"`` (payload is an
    error-info dict).  Only an abrupt process death escapes this function.
    """
    index, key, job, attempt, timeout, faults = payload
    try:
        result = _run_with_deadline(
            lambda: (_apply_worker_fault(faults, key, attempt, in_worker=True), job.run())[1],
            timeout,
            preemptive=True,
        )
    except JobTimeout as error:
        return index, "timeout", _error_info(error)
    except BaseException as error:  # noqa: BLE001 — report, never kill the worker loop
        return index, "error", _error_info(error)
    return index, "ok", result


# --------------------------------------------------------------------- #
# Supervisor
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SupervisorConfig:
    """Picklable knobs for supervised execution, plumbed through
    ``run_jobs`` / ``replicate`` / the figure sweeps / the CLI."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    job_timeout: "float | None" = None
    journal: "str | Path | None" = None
    resume_journal: "str | Path | None" = None
    watchdog_grace: float = 2.0
    worker_faults: "WorkerFaultProfile | None" = None

    def __post_init__(self):
        if self.job_timeout is not None and self.job_timeout <= 0.0:
            raise ValueError("job_timeout must be positive (or None)")
        if self.watchdog_grace < 0.0:
            raise ValueError("watchdog_grace must be non-negative")

    def executor(self, n_jobs: "int | None" = None, **kwargs) -> "SupervisedExecutor":
        """Build a :class:`SupervisedExecutor` for this config."""
        return SupervisedExecutor(
            n_jobs=n_jobs,
            retry=self.retry,
            job_timeout=self.job_timeout,
            journal=self.journal,
            resume_journal=self.resume_journal,
            watchdog_grace=self.watchdog_grace,
            worker_faults=self.worker_faults,
            **kwargs,
        )


class _RunState:
    """Mutable per-run bookkeeping (index-aligned with the job list)."""

    def __init__(self, jobs: list, keys: list):
        self.jobs = jobs
        self.keys = keys
        self.results: list = [None] * len(jobs)
        self.attempts: list = [[] for _ in jobs]
        self.done: list = [False] * len(jobs)
        self.dead_letters: list = []


class SupervisedExecutor:
    """Run sweep jobs under crash/hang/retry supervision.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``None``/0/1 runs jobs in-process (still with
        retries, deadlines — cooperative there — journaling, and
        dead-lettering).  Negative means one per CPU.
    retry:
        Shared :class:`~repro.reliability.retry.RetryPolicy`;
        ``max_attempts`` failures dead-letter the job.
    job_timeout:
        Per-job deadline in seconds (in-worker ``SIGALRM``); ``None``
        disables both the deadline and the watchdog.
    journal / resume_journal:
        JSONL run-journal paths.  ``journal`` appends every outcome;
        ``resume_journal`` preloads completed results (matched by job key)
        before running.  They may name the same file — the normal
        crash-resume pattern.
    watchdog_grace:
        Extra seconds past ``job_timeout`` before the parent declares a
        worker hung and SIGKILLs the pool.
    worker_faults:
        Optional :class:`~repro.reliability.faults.WorkerFaultProfile`
        injected into workers (chaos harness).
    tracer / metrics:
        Optional :class:`~repro.observability.tracer.RunTracer` and
        :class:`~repro.observability.metrics.MetricsRegistry`; events are
        ``job.start`` / ``job.retry`` / ``job.complete`` /
        ``job.dead_letter`` / ``pool.restart``.
    sleep / clock:
        Injectable time sources (tests pass a no-op sleep).
    """

    def __init__(
        self,
        n_jobs: "int | None" = None,
        retry: "RetryPolicy | None" = None,
        job_timeout: "float | None" = None,
        journal: "str | Path | None" = None,
        resume_journal: "str | Path | None" = None,
        watchdog_grace: float = 2.0,
        worker_faults: "WorkerFaultProfile | None" = None,
        tracer=None,
        metrics=None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        if job_timeout is not None and job_timeout <= 0.0:
            raise ValueError("job_timeout must be positive (or None)")
        if watchdog_grace < 0.0:
            raise ValueError("watchdog_grace must be non-negative")
        if n_jobs is not None and n_jobs < 0:
            n_jobs = os.cpu_count() or 1
        self._n_jobs = n_jobs
        self._retry = retry if retry is not None else RetryPolicy()
        self._timeout = job_timeout
        self._journal_path = None if journal is None else Path(journal)
        self._resume_path = None if resume_journal is None else Path(resume_journal)
        self._grace = float(watchdog_grace)
        self._faults = worker_faults
        self._tracer = tracer
        self._metrics = metrics
        self._sleep = sleep
        self._clock = clock
        self._journal_file = None
        self._shutdown = False
        self._signal_count = 0
        #: The :class:`SupervisedResult` of the most recent :meth:`run`.
        self.last_run: "SupervisedResult | None" = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(self, jobs: Sequence) -> SupervisedResult:
        """Execute ``jobs``; returns results aligned with submission order."""
        jobs = list(jobs)
        state = _RunState(jobs, [job_key(job) for job in jobs])
        self._stats = SupervisedStats()
        self._shutdown = False
        self._signal_count = 0
        self._open_journal()
        self._resume(state)
        self._journal_write(
            {
                "type": "run.start",
                "journal_version": JOURNAL_VERSION,
                "total_jobs": len(jobs),
                "resumed": self._stats.resumed,
            }
        )
        pending = deque(i for i in range(len(jobs)) if not state.done[i])
        previous_handlers = self._install_signal_handlers()
        try:
            if pending:
                if self._n_jobs in (None, 0, 1) or len(pending) <= 1:
                    self._run_serial(state, pending)
                else:
                    self._run_pool(state, pending)
        finally:
            self._restore_signal_handlers(previous_handlers)
            self._close_journal()
        outcome = SupervisedResult(
            results=state.results,
            dead_letters=state.dead_letters,
            stats=self._stats,
            journal_path=self._journal_path,
        )
        self.last_run = outcome
        if self._shutdown and not all(state.done):
            raise SweepInterrupted(outcome)
        return outcome

    def request_shutdown(self) -> None:
        """Ask the running sweep to drain and stop (what SIGINT triggers)."""
        self._shutdown = True

    # ------------------------------------------------------------------ #
    # Signals
    # ------------------------------------------------------------------ #

    def _handle_signal(self, signum, frame) -> None:
        self._signal_count += 1
        if self._signal_count >= 2:
            # The operator insists: abandon the drain.
            raise KeyboardInterrupt("second interrupt during supervised sweep")
        name = signal.Signals(signum).name if hasattr(signal, "Signals") else str(signum)
        _LOG.warning("%s received: draining in-flight sweep jobs (again to abort)", name)
        self.request_shutdown()

    def _install_signal_handlers(self):
        if threading.current_thread() is not threading.main_thread():
            return None
        try:
            return {
                signal.SIGINT: signal.signal(signal.SIGINT, self._handle_signal),
                signal.SIGTERM: signal.signal(signal.SIGTERM, self._handle_signal),
            }
        except (ValueError, OSError, AttributeError):  # non-main thread race / platform
            return None

    def _restore_signal_handlers(self, previous) -> None:
        if previous is None:
            return
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover — interpreter shutdown
                pass

    # ------------------------------------------------------------------ #
    # Journal
    # ------------------------------------------------------------------ #

    def _open_journal(self) -> None:
        if self._journal_path is None:
            return
        self._journal_path.parent.mkdir(parents=True, exist_ok=True)
        # Append + line buffering: a crashed sweep keeps every completed
        # outcome and truncates at most the line being written.
        self._journal_file = self._journal_path.open("a", buffering=1)

    def _close_journal(self) -> None:
        if self._journal_file is not None:
            self._journal_file.close()
            self._journal_file = None

    def _journal_write(self, record: dict) -> None:
        if self._journal_file is not None:
            self._journal_file.write(canonical_json(record) + "\n")

    def _resume(self, state: _RunState) -> None:
        if self._resume_path is None or not self._resume_path.exists():
            if self._resume_path is not None:
                _LOG.warning("resume journal %s does not exist; running cold", self._resume_path)
            return
        completed = load_journal_results(self._resume_path)
        for i, key in enumerate(state.keys):
            bucket = completed.get(key)
            if bucket:
                state.results[i] = bucket.popleft()
                state.done[i] = True
                self._stats.resumed += 1
                self._emit("job.resumed", index=i, key=key)
        if self._stats.resumed:
            _LOG.info(
                "resumed %d/%d jobs from journal %s",
                self._stats.resumed,
                len(state.jobs),
                self._resume_path,
            )

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    def _emit(self, type: str, **data) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(type, **data)

    def _count(self, name: str, help_text: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, help_text).inc()

    # ------------------------------------------------------------------ #
    # Outcome handling (shared by serial and pool paths)
    # ------------------------------------------------------------------ #

    def _handle_success(self, state: _RunState, index: int, result) -> None:
        attempt_no = len(state.attempts[index]) + 1
        state.attempts[index].append(Attempt(attempt_no, "ok"))
        state.results[index] = result
        state.done[index] = True
        self._stats.completed += 1
        key = state.keys[index]
        data = pickle.dumps(result, protocol=4)
        self._journal_write(
            {
                "type": "job.complete",
                "index": index,
                "key": key,
                "attempts": attempt_no,
                "sha256": hashlib.sha256(data).hexdigest(),
                "result": base64.b64encode(data).decode("ascii"),
            }
        )
        self._emit("job.complete", index=index, key=key, attempts=attempt_no)
        self._count("repro_sweep_jobs_completed_total", "supervised sweep jobs completed")

    def _handle_failure(self, state: _RunState, index: int, outcome: str, info: dict) -> "float | None":
        """Record one failed attempt.

        Returns the backoff delay before the retry, or ``None`` when the
        job was dead-lettered (or retries are exhausted by shutdown).
        """
        attempt_no = len(state.attempts[index]) + 1
        key = state.keys[index]
        state.attempts[index].append(
            Attempt(attempt_no, outcome, info.get("error_class"), info.get("message"))
        )
        if outcome == "timeout" or outcome == "watchdog":
            self._stats.timeouts += 1
        if outcome == "crash":
            self._stats.crashes += 1
        if attempt_no >= self._retry.max_attempts:
            letter = DeadLetter(
                index=index,
                key=key,
                error_class=info.get("error_class") or outcome,
                message=info.get("message") or f"job failed with {outcome}",
                traceback=info.get("traceback") or "",
                attempts=tuple(state.attempts[index]),
            )
            state.dead_letters.append(letter)
            state.done[index] = True
            self._stats.dead_lettered += 1
            self._journal_write({"type": "job.dead_letter", **letter.as_dict()})
            self._emit(
                "job.dead_letter", index=index, key=key, error_class=letter.error_class
            )
            self._count("repro_sweep_dead_letters_total", "supervised sweep jobs dead-lettered")
            _LOG.error(
                "job %d (%s) dead-lettered after %d attempts: %s: %s",
                index,
                key,
                attempt_no,
                letter.error_class,
                letter.message,
            )
            return None
        self._stats.retries += 1
        delay = self._retry.delay(attempt_no, token=key)
        self._journal_write(
            {
                "type": "job.retry",
                "index": index,
                "key": key,
                "attempt": attempt_no,
                "outcome": outcome,
                "error_class": info.get("error_class"),
            }
        )
        self._emit("job.retry", index=index, key=key, attempt=attempt_no, outcome=outcome)
        self._count("repro_sweep_retries_total", "supervised sweep job retries")
        return delay

    def _record_pool_restart(self, reason: str) -> None:
        self._stats.worker_restarts += 1
        self._emit("pool.restart", reason=reason)
        self._count("repro_sweep_worker_restarts_total", "supervised sweep pool rebuilds")
        _LOG.warning("worker pool restarted (%s)", reason)

    # ------------------------------------------------------------------ #
    # Serial path
    # ------------------------------------------------------------------ #

    def _run_serial(self, state: _RunState, pending: deque) -> None:
        while pending:
            if self._shutdown:
                return
            index = pending.popleft()
            attempt_no = len(state.attempts[index]) + 1
            key = state.keys[index]
            self._emit("job.start", index=index, key=key, attempt=attempt_no)
            # Same execution as the pool path, minus preemptive alarms
            # (which would clobber the host process's own SIGALRM timer —
            # e.g. the repo's pytest timeout plugin).
            try:
                result = _run_with_deadline(
                    lambda: (
                        _apply_worker_fault(self._faults, key, attempt_no, in_worker=False),
                        state.jobs[index].run(),
                    )[1],
                    self._timeout,
                    preemptive=False,
                )
            except JobTimeout as error:
                status, info = "timeout", _error_info(error)
            except KeyboardInterrupt:
                raise
            except BaseException as error:  # noqa: BLE001 — degrade to dead letter
                status, info = "error", _error_info(error)
            else:
                self._handle_success(state, index, result)
                continue
            delay = self._handle_failure(state, index, status, info)
            if delay is not None:
                self._sleep(delay)
                pending.append(index)

    # ------------------------------------------------------------------ #
    # Pool path
    # ------------------------------------------------------------------ #

    def _new_pool(self, n_workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=n_workers, initializer=_worker_initializer)

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """SIGKILL every worker, then tear the pool down (hung workers)."""
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover — already gone
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _submit(self, pool, state: _RunState, index: int):
        attempt_no = len(state.attempts[index]) + 1
        key = state.keys[index]
        self._emit("job.start", index=index, key=key, attempt=attempt_no)
        payload = (index, key, state.jobs[index], attempt_no, self._timeout, self._faults)
        return pool.submit(_supervised_worker, payload)

    def _run_pool(self, state: _RunState, pending: deque) -> None:
        n_workers = min(self._n_jobs, len(pending))
        pool = self._new_pool(n_workers)
        in_flight: dict = {}  # future -> (index, submitted_at)
        retry_heap: list = []  # (ready_time, tiebreak, index)
        tiebreak = 0
        try:
            while pending or in_flight or retry_heap:
                now = self._clock()
                while retry_heap and retry_heap[0][0] <= now:
                    pending.append(heapq.heappop(retry_heap)[2])
                if self._shutdown:
                    if not in_flight:
                        return
                elif pending and len(in_flight) < n_workers:
                    # Bounded in-flight submission: every submitted job is
                    # (nearly) running, which is what makes the watchdog's
                    # per-future submit clock meaningful.
                    try:
                        while pending and len(in_flight) < n_workers:
                            index = pending.popleft()
                            in_flight[self._submit(pool, state, index)] = (index, self._clock())
                    except BrokenProcessPool:
                        pending.appendleft(index)
                        pool = self._recover_pool(pool, n_workers, state, in_flight, pending, "submit-to-broken-pool")
                        continue
                if not in_flight:
                    if retry_heap:
                        self._sleep(max(0.0, min(retry_heap[0][0] - self._clock(), 0.05)))
                    continue
                done_set, _ = wait(
                    list(in_flight), timeout=self._wait_timeout(in_flight, retry_heap), return_when=FIRST_COMPLETED
                )
                pool_broken = False
                for future in done_set:
                    index, _submitted = in_flight.pop(future)
                    try:
                        _, status, payload = future.result()
                    except CancelledError:  # pragma: no cover — racing shutdown
                        pending.appendleft(index)
                        continue
                    except BrokenProcessPool as error:
                        pool_broken = True
                        delay = self._handle_failure(
                            state, index, "crash", {"error_class": "BrokenProcessPool", "message": str(error)}
                        )
                        if delay is not None:
                            tiebreak += 1
                            heapq.heappush(retry_heap, (self._clock() + delay, tiebreak, index))
                        continue
                    if status == "ok":
                        self._handle_success(state, index, payload)
                    else:
                        delay = self._handle_failure(state, index, status, payload)
                        if delay is not None:
                            tiebreak += 1
                            heapq.heappush(retry_heap, (self._clock() + delay, tiebreak, index))
                if pool_broken:
                    pool = self._recover_pool(pool, n_workers, state, in_flight, pending, "worker-crash")
                    continue
                pool = self._watchdog(pool, n_workers, state, in_flight, pending, retry_heap)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _recover_pool(self, pool, n_workers, state, in_flight, pending, reason):
        """Charge surviving in-flight jobs a crash attempt and rebuild.

        A worker death breaks the whole ``ProcessPoolExecutor``, and the
        parent cannot tell which in-flight job crashed it — so every one is
        charged a ``crash`` attempt (innocent jobs clear it on retry, a
        deterministic crasher accumulates attempts and dead-letters).
        """
        for future, (index, _submitted) in list(in_flight.items()):
            delay = self._handle_failure(
                state,
                index,
                "crash",
                {"error_class": "BrokenProcessPool", "message": "worker pool broke while job was in flight"},
            )
            if delay is not None:
                # Resubmit immediately (the pool rebuild already costs more
                # than any early backoff step).
                pending.append(index)
        in_flight.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        self._record_pool_restart(reason)
        return self._new_pool(n_workers)

    def _watchdog(self, pool, n_workers, state, in_flight, pending, retry_heap):
        """Reclaim workers hung past ``job_timeout + watchdog_grace``."""
        if self._timeout is None or not in_flight:
            return pool
        now = self._clock()
        budget = self._timeout + self._grace
        overdue = {
            future for future, (_, submitted) in in_flight.items() if now - submitted > budget
        }
        overdue = {future for future in overdue if not future.done()}
        if not overdue:
            return pool
        for future, (index, _submitted) in list(in_flight.items()):
            if future in overdue:
                delay = self._handle_failure(
                    state,
                    index,
                    "watchdog",
                    {
                        "error_class": "JobTimeout",
                        "message": f"worker hung past {budget:g}s; killed by the watchdog",
                    },
                )
                if delay is not None:
                    pending.append(index)
            else:
                # Innocent in-flight jobs die with the pool but are not
                # charged an attempt — only the overdue ones are at fault
                # and identifiable.
                pending.appendleft(index)
        in_flight.clear()
        self._kill_pool(pool)
        self._record_pool_restart("hung-worker-watchdog")
        return self._new_pool(n_workers)

    def _wait_timeout(self, in_flight: dict, retry_heap: list) -> float:
        """How long to block in ``wait()`` before the next supervision tick."""
        candidates = [0.25]
        now = self._clock()
        if self._timeout is not None and in_flight:
            budget = self._timeout + self._grace
            earliest = min(submitted for _, submitted in in_flight.values())
            candidates.append(earliest + budget - now)
        if retry_heap:
            candidates.append(retry_heap[0][0] - now)
        return max(0.01, min(candidates))
