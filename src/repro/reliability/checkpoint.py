"""Crash-safe checkpointing for :class:`~repro.core.pipeline.ETA2System`.

A production server checkpoints after every completed step so a crash costs
at most one day of learning.  The format hardens the plain state snapshot
of :mod:`repro.core.serialization` against the ways persistence actually
fails:

- **atomic writes** — temp file + ``os.replace``, so a crash mid-write
  leaves the previous checkpoint intact (never a half-written file under
  the real name);
- **checksums** — each record embeds the SHA-256 of its canonical state
  payload; silent corruption (truncation, bit rot, concurrent writers) is
  detected at load time rather than producing subtly wrong expertise;
- **rotation** — only the newest ``keep`` checkpoints are retained;
- **fallback recovery** — :meth:`CheckpointManager.restore` walks
  checkpoints newest-to-oldest and restores the first *valid* one, logging
  (not crashing on) every corrupt file it skips.

File layout: ``<directory>/<prefix>-<step:08d>.json``; stray ``*.tmp``
files from interrupted writes are ignored and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import logging
import re
from pathlib import Path
from typing import Callable

__all__ = ["CheckpointError", "CheckpointManager", "CHECKPOINT_VERSION"]

_LOG = logging.getLogger(__name__)

CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is missing, corrupt, or from an unknown format."""


def _canonical(state: dict) -> str:
    """The canonical JSON text a checkpoint's checksum is computed over."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def _checksum(state: dict) -> str:
    return hashlib.sha256(_canonical(state).encode("utf-8")).hexdigest()


class CheckpointManager:
    """Write, rotate, validate, and restore system checkpoints."""

    def __init__(
        self,
        directory: "str | Path",
        keep: int = 3,
        prefix: str = "checkpoint",
        manifest: "dict | None" = None,
        tracer=None,
    ):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        if not re.fullmatch(r"[A-Za-z0-9_.-]+", prefix):
            raise ValueError("prefix must be a simple filename fragment")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        self.prefix = prefix
        # The run manifest (repro.observability.run_manifest) is stamped
        # into every save's metadata; restore compares its config_hash
        # against the stored one and warns on drift.
        self.manifest = manifest
        self.tracer = tracer
        self._pattern = re.compile(rf"^{re.escape(prefix)}-(\d{{8}})\.json$")

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def path_for(self, step: int) -> Path:
        if step < 0:
            raise ValueError("step must be non-negative")
        return self.directory / f"{self.prefix}-{step:08d}.json"

    def save(
        self,
        system,
        step: int,
        metadata: "dict | None" = None,
        _writer: "Callable | None" = None,
    ) -> Path:
        """Checkpoint ``system`` as of completed step ``step`` (atomic).

        ``_writer`` is a fault-injection hook (see
        :func:`repro.reliability.faults.crashing_writer`); leave it None in
        production.
        """
        from repro.core.serialization import atomic_write_text, system_state_to_dict

        state = system_state_to_dict(system)
        merged = dict(metadata or {})
        if self.manifest is not None and "manifest" not in merged:
            merged["manifest"] = self.manifest
        record = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "step": int(step),
            "metadata": merged,
            "checksum": _checksum(state),
            "state": state,
        }
        path = self.path_for(step)
        text = json.dumps(record)
        # Rotate *before* the new checkpoint becomes visible.  The old
        # order (write, then rotate) had a crash window in which keep+1
        # files existed and latest_valid() resumed from the unrotated
        # extra — a step the caller never saw save() acknowledge.  Trimming
        # to keep-1 first keeps "at most `keep` checkpoint files" true at
        # every instant; a crash mid-write still leaves the keep-1 newest
        # previous checkpoints restorable.
        self._rotate(pending=path)
        atomic_write_text(path, text, writer=_writer)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            # File *name* only (not the tmp-dir-dependent full path) so
            # same-seed traces stay byte-identical across machines.
            tracer.emit(
                "checkpoint.save", step=int(step), file=path.name, bytes=len(text)
            )
        return path

    def _rotate(self, pending: "Path | None" = None) -> None:
        """Trim old checkpoints; ``pending`` reserves a slot for a save.

        With a ``pending`` path the budget for *existing* files is
        ``keep - 1`` (the about-to-be-written file takes the last slot);
        re-saving an existing step does not shrink the budget because the
        pending path is excluded from the count.
        """
        checkpoints = [path for path in self.checkpoints() if path != pending]
        budget = self.keep - 1 if pending is not None else self.keep
        for path in checkpoints[: max(0, len(checkpoints) - budget)]:
            try:
                path.unlink()
            except OSError as error:  # pragma: no cover — racing cleanup
                _LOG.warning("could not remove old checkpoint %s: %s", path, error)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def checkpoints(self) -> list:
        """All checkpoint paths in this directory, oldest first."""
        found = []
        for path in self.directory.iterdir():
            match = self._pattern.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _, path in sorted(found)]

    def load_record(self, path: "str | Path") -> dict:
        """Parse and validate one checkpoint file.

        Raises :class:`CheckpointError` (a ``ValueError``) with a clear
        message on truncation, corruption, checksum mismatch, or an unknown
        format version — never a raw JSON traceback.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as error:
            raise CheckpointError(f"cannot read checkpoint {path}: {error}") from None
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"checkpoint {path} is corrupt (truncated or invalid JSON): {error.msg}"
            ) from None
        if not isinstance(record, dict):
            raise CheckpointError(f"checkpoint {path} does not contain a record object")
        version = record.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(f"checkpoint {path} has unsupported version {version!r}")
        for key in ("step", "checksum", "state"):
            if key not in record:
                raise CheckpointError(f"checkpoint {path} is missing the {key!r} field")
        actual = _checksum(record["state"])
        if actual != record["checksum"]:
            raise CheckpointError(
                f"checkpoint {path} failed checksum validation "
                f"(stored {record['checksum'][:12]}…, computed {actual[:12]}…)"
            )
        return record

    def latest_valid(self) -> "tuple[Path, dict] | None":
        """The newest checkpoint that passes validation, or None.

        Corrupt checkpoints are skipped with a warning — a bad newest file
        must not make older good ones unreachable.
        """
        for path in reversed(self.checkpoints()):
            try:
                return path, self.load_record(path)
            except CheckpointError as error:
                _LOG.warning("skipping invalid checkpoint: %s", error)
        return None

    def restore(self, system) -> "int | None":
        """Restore the newest valid checkpoint into ``system``.

        Returns the restored step number, or None when no valid checkpoint
        exists (the system is left untouched).
        """
        from repro.core.serialization import apply_system_state

        found = self.latest_valid()
        if found is None:
            return None
        path, record = found
        self._check_drift(path, record)
        apply_system_state(system, record["state"])
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit("checkpoint.restore", step=int(record["step"]), file=path.name)
        _LOG.info("restored checkpoint %s (step %d)", path.name, record["step"])
        return int(record["step"])

    def _check_drift(self, path: Path, record: dict) -> None:
        """Warn when the checkpoint was written under a different config.

        Resuming yesterday's state under today's edited configuration is
        the classic silent failure this catches: the comparison is on the
        manifests' ``config_hash``.  No-op when either side lacks a
        manifest (pre-telemetry checkpoints stay restorable).
        """
        if self.manifest is None:
            return
        stored = record.get("metadata", {}).get("manifest")
        if not isinstance(stored, dict):
            return
        stored_hash = stored.get("config_hash")
        current_hash = self.manifest.get("config_hash")
        if stored_hash is None or current_hash is None or stored_hash == current_hash:
            return
        _LOG.warning(
            "checkpoint %s was written under a different configuration "
            "(stored config hash %s…, current %s…); resuming anyway",
            path.name,
            str(stored_hash)[:12],
            str(current_hash)[:12],
        )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                "checkpoint.config_drift",
                file=path.name,
                stored=stored_hash,
                current=current_hash,
            )
