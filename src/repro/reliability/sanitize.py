"""Observation sanitization: quarantine bad payloads before truth analysis.

Even with a resilient transport, *delivered* values can be garbage: NaN and
inf payloads from broken sensors, or gross outliers from malfunctioning (or
malicious) clients.  The Section 4.1 MLE weights observations by estimated
expertise, so a single ``1e12`` payload from a so-far-reliable user would
drag a task's truth estimate arbitrarily far.  :class:`ObservationSanitizer`
is a quarantine pass between collection and estimation:

- non-finite payloads (NaN / ±inf) become missing observations;
- optional absolute bounds reject physically impossible values;
- *gross outliers* are detected per task with a robust z-score (median /
  MAD over that task's batch of observations) — observations of the same
  task should agree to within a few base numbers, so a value tens of MADs
  away is quarantined rather than trusted.

Rejected values are replaced by NaN — the pipeline's standard
missing-observation marker — and counted by reason in a
:class:`SanitizeReport`, so operators can see *what* was dropped and *why*
instead of silently losing data.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Sequence

import numpy as np

__all__ = ["SanitizeReport", "ObservationSanitizer", "IngestSchema", "ScreenResult"]

#: MAD-to-standard-deviation consistency factor for normal data.
_MAD_SCALE = 1.4826


@dataclass
class SanitizeReport:
    """Counters of quarantined observations, by reason."""

    pairs: int = 0
    nan_payloads: int = 0
    inf_payloads: int = 0
    out_of_bounds: int = 0
    outliers: int = 0
    accepted: int = 0

    @property
    def rejected(self) -> int:
        return self.nan_payloads + self.inf_payloads + self.out_of_bounds + self.outliers

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        parts = [f"{name}={value}" for name, value in self.as_dict().items() if value]
        return "SanitizeReport(" + (", ".join(parts) or "empty") + ")"


@dataclass(frozen=True)
class IngestSchema:
    """What a well-formed ingest report looks like at the service boundary.

    The batch pipeline can afford to *coerce* bad values (NaN is already
    the missing marker), but a streaming front-end must not: a malformed
    report written to the write-ahead log would be replayed forever.  The
    schema pins the valid id ranges so the service can reject before
    durability.
    """

    n_users: int
    n_tasks: int
    min_day: int = 0
    max_day: "int | None" = None

    def __post_init__(self):
        if self.n_users <= 0 or self.n_tasks <= 0:
            raise ValueError("n_users and n_tasks must be positive")
        if self.max_day is not None and self.max_day < self.min_day:
            raise ValueError("max_day must be >= min_day")

    def day_in_range(self, day: int) -> bool:
        if day < self.min_day:
            return False
        return self.max_day is None or day <= self.max_day


@dataclass
class ScreenResult:
    """Outcome of one strict screening pass: what survived, what fell, why."""

    accepted: list
    rejected: list  #: ``(report, reason)`` pairs, in input order.

    @property
    def rejected_count(self) -> int:
        return len(self.rejected)

    def counts(self) -> dict:
        """Rejections by reason (stable reason strings, see ``screen_reports``)."""
        counts: dict = {}
        for _, reason in self.rejected:
            counts[reason] = counts.get(reason, 0) + 1
        return counts


class ObservationSanitizer:
    """Reject NaN/inf and gross outliers from one batch of observations.

    Parameters
    ----------
    outlier_zscore:
        Robust z-score (``|x - median| / (1.4826 * MAD)``) beyond which a
        value counts as a gross outlier.  The default of 8 is deliberately
        loose — honest low-expertise noise per the paper's model stays well
        inside it, so only wildly corrupt payloads are quarantined.
    min_task_observations:
        Outlier detection needs context: tasks with fewer finite
        observations than this in the batch are left alone (a median over
        two points cannot identify the bad one).
    value_bounds:
        Optional ``(low, high)`` absolute bounds on plausible observations.
    """

    def __init__(
        self,
        outlier_zscore: float = 8.0,
        min_task_observations: int = 3,
        value_bounds: "tuple[float, float] | None" = None,
    ):
        if outlier_zscore <= 0.0:
            raise ValueError("outlier_zscore must be positive")
        if min_task_observations < 3:
            raise ValueError("min_task_observations must be at least 3")
        if value_bounds is not None and value_bounds[0] >= value_bounds[1]:
            raise ValueError("value_bounds must be (low, high) with low < high")
        self._zscore = float(outlier_zscore)
        self._min_obs = int(min_task_observations)
        self._bounds = value_bounds
        self.report = SanitizeReport()

    def sanitize(self, pairs: Sequence, values) -> np.ndarray:
        """Return a cleaned copy of ``values``; rejected entries become NaN.

        ``pairs`` are the ``(user, task)`` pairs the values belong to —
        outlier detection groups by task.  NaN inputs pass through unchanged
        (they are already the missing-observation marker) but are counted.
        """
        values = np.array(values, dtype=float)
        pairs = list(pairs)
        if values.shape != (len(pairs),):
            raise ValueError("values must have one entry per pair")
        report = self.report
        report.pairs += len(pairs)

        nan_in = np.isnan(values)
        report.nan_payloads += int(nan_in.sum())

        inf_in = np.isinf(values)
        report.inf_payloads += int(inf_in.sum())
        values[inf_in] = np.nan

        if self._bounds is not None:
            low, high = self._bounds
            with np.errstate(invalid="ignore"):
                bad = (values < low) | (values > high)
            report.out_of_bounds += int(bad.sum())
            values[bad] = np.nan

        tasks = np.array([task for _, task in pairs], dtype=int) if pairs else np.zeros(0, int)
        for task in np.unique(tasks):
            members = np.flatnonzero(tasks == task)
            finite = members[np.isfinite(values[members])]
            if finite.size < self._min_obs:
                continue
            sample = values[finite]
            median = float(np.median(sample))
            mad = float(np.median(np.abs(sample - median)))
            scale = max(_MAD_SCALE * mad, 1e-12)
            bad = finite[np.abs(sample - median) / scale > self._zscore]
            report.outliers += int(bad.size)
            values[bad] = np.nan

        report.accepted += int(np.isfinite(values).sum())
        return values

    def screen_reports(
        self, reports, schema: IngestSchema, day: "int | None" = None
    ) -> ScreenResult:
        """Strict ingest-schema screening for the service boundary.

        Unlike :meth:`sanitize` — which *coerces* bad payloads to the NaN
        missing marker — this mode **rejects**: every report failing the
        schema is returned in ``ScreenResult.rejected`` with a stable
        reason string, and only clean reports reach the write-ahead log.

        ``reports`` is an iterable of ``(user, task, value)`` triples;
        ``day`` (when given) is the batch's claimed day index.  Reason
        strings: ``"day_out_of_range"`` (rejects the whole batch),
        ``"malformed"`` (not a 3-tuple / non-integer ids),
        ``"unknown_user"``, ``"unknown_task"``, ``"non_finite_value"``,
        and — when ``value_bounds`` is configured — ``"out_of_bounds"``.
        """
        reports = list(reports)
        if day is not None and not schema.day_in_range(int(day)):
            return ScreenResult(
                accepted=[], rejected=[(r, "day_out_of_range") for r in reports]
            )
        accepted: list = []
        rejected: list = []
        for report in reports:
            try:
                user, task, value = report
                user, task, value = int(user), int(task), float(value)
            except (TypeError, ValueError):
                rejected.append((report, "malformed"))
                continue
            if not 0 <= user < schema.n_users:
                rejected.append((report, "unknown_user"))
            elif not 0 <= task < schema.n_tasks:
                rejected.append((report, "unknown_task"))
            elif not np.isfinite(value):
                rejected.append((report, "non_finite_value"))
            elif self._bounds is not None and not (self._bounds[0] <= value <= self._bounds[1]):
                rejected.append((report, "out_of_bounds"))
            else:
                accepted.append((user, task, value))
        return ScreenResult(accepted=accepted, rejected=rejected)
