"""Resilient data collection: a fault-tolerant ``observe()`` wrapper.

:class:`ETA2System` drives data collection through an ``observe(pairs) ->
values`` callback.  Against live mobile users that callback is the least
trustworthy part of the whole loop: the transport can raise, hang past any
reasonable deadline, or return malformed payloads.  :class:`ResilientObserver`
wraps any such callback so the daily step *always* gets an answer:

- **retry with exponential backoff** (:class:`RetryPolicy`) for transient
  batch failures;
- a **circuit breaker** (:class:`CircuitBreaker`) that stops hammering a
  transport that is clearly down and lets it recover;
- a **per-call timeout** — the wall-clock (or injected virtual-clock) time
  of each call is measured and responses that arrive too late are
  discarded, since the slot they were meant for has passed;
- **per-pair salvage**: when a whole batch keeps failing, each pair is
  retried individually so one poison pair cannot sink the rest;
- **graceful degradation**: pairs that still fail come back as NaN, the
  pipeline's standard missing-observation marker, instead of an exception
  aborting the day.

Timeouts are detected *after* the call returns (cooperative, not
preemptive): a synchronous Python callback cannot be interrupted safely, so
a stuck transport should enforce its own transport-level deadline and raise
— which the retry/breaker machinery then handles.  The measured-elapsed
check still protects truth analysis from consuming answers that arrived too
late to matter, and gives the fault injector a deterministic hook.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, fields
from typing import Callable, Sequence

import numpy as np

from repro.reliability.retry import RetryPolicy
from repro.reliability.sanitize import ObservationSanitizer

# RetryPolicy moved to repro.reliability.retry (shared with the sweep
# supervisor) and stays importable from here.
__all__ = ["RetryPolicy", "CircuitBreaker", "ObserverReport", "ResilientObserver"]

_LOG = logging.getLogger(__name__)


class CircuitBreaker:
    """Classic three-state circuit breaker (closed / open / half-open).

    ``failure_threshold`` consecutive failures open the circuit; while open,
    :meth:`allow` refuses calls until ``recovery_time`` has elapsed on
    ``clock``, after which the breaker half-opens and lets probes through.
    A success closes it again; a failure in the half-open state re-opens it
    immediately.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_time < 0.0:
            raise ValueError("recovery_time must be non-negative")
        self._threshold = int(failure_threshold)
        self._recovery_time = float(recovery_time)
        self._clock = clock
        self._failures = 0
        self._opened_at: "float | None" = None
        self._half_open = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._half_open:
            return "half-open"
        if self._clock() - self._opened_at >= self._recovery_time:
            return "half-open"
        return "open"

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """Whether a call may proceed right now (may half-open the breaker)."""
        if self._opened_at is None:
            return True
        if self._half_open or self._clock() - self._opened_at >= self._recovery_time:
            self._half_open = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._half_open = False

    def record_failure(self) -> None:
        self._failures += 1
        if self._half_open or self._failures >= self._threshold:
            self._opened_at = self._clock()
            self._half_open = False


@dataclass
class ObserverReport:
    """Running counters of everything a :class:`ResilientObserver` saw.

    One report can be shared between several observer instances (the
    simulation engine rebuilds the per-day closure but keeps one report for
    the whole run).
    """

    calls: int = 0
    retries: int = 0
    exceptions: int = 0
    timeouts: int = 0
    malformed: int = 0
    short_circuits: int = 0
    salvage_calls: int = 0
    salvaged_pairs: int = 0
    failed_pairs: int = 0
    delivered_pairs: int = 0

    @property
    def fault_count(self) -> int:
        """Total transport-level faults observed (not pairs lost)."""
        return self.exceptions + self.timeouts + self.malformed

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        parts = [f"{name}={value}" for name, value in self.as_dict().items() if value]
        return "ObserverReport(" + (", ".join(parts) or "clean") + ")"


class ResilientObserver:
    """Wrap an ``observe(pairs)`` callback so it degrades instead of failing.

    The wrapper is itself a valid ``observe`` callback: it returns one float
    per pair, with NaN for pairs whose collection ultimately failed (the
    pipeline already treats NaN as a missing observation).  The fault-free
    fast path adds only two clock reads and a couple of comparisons on top
    of the wrapped call — see ``benchmarks/test_reliability_overhead.py``.

    Parameters
    ----------
    observe:
        The wrapped callback.
    retry:
        Backoff schedule for failed batch calls (default :class:`RetryPolicy`).
    breaker:
        Circuit breaker shared across calls; ``None`` builds a private one.
    call_timeout:
        Maximum measured duration (on ``clock``) of a single call; slower
        responses are discarded as timeouts.  ``None`` disables the check.
    sanitizer:
        Optional :class:`ObservationSanitizer` quarantining NaN/inf payloads
        and gross outliers from successful responses.
    salvage:
        When True (default), a batch that exhausts its retries is split into
        single-pair calls so healthy pairs are still collected.
    clock / sleep:
        Injectable time sources (tests and the simulation pass a
        :class:`~repro.reliability.faults.VirtualClock` and a no-op sleep).
    report:
        Optional shared :class:`ObserverReport` to accumulate into.
    """

    def __init__(
        self,
        observe: Callable,
        *,
        retry: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        call_timeout: "float | None" = None,
        sanitizer: "ObservationSanitizer | None" = None,
        salvage: bool = True,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        report: "ObserverReport | None" = None,
    ):
        if call_timeout is not None and call_timeout <= 0.0:
            raise ValueError("call_timeout must be positive (or None)")
        self._observe = observe
        self._retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(clock=clock)
        self._timeout = call_timeout
        self._sanitizer = sanitizer
        self._salvage = bool(salvage)
        self._clock = clock
        self._sleep = sleep
        self.report = report if report is not None else ObserverReport()

    # ------------------------------------------------------------------ #

    def __call__(self, pairs: Sequence) -> np.ndarray:
        if type(pairs) is not list:  # the wrapped callback expects a list;
            pairs = list(pairs)  # skip the copy on the common case
        n = len(pairs)
        report = self.report
        report.calls += 1
        if n == 0:
            return np.zeros(0, dtype=float)
        if not self.breaker.allow():
            report.short_circuits += 1
            report.failed_pairs += n
            return np.full(n, np.nan)

        values = self._attempt(pairs)
        if values is None:
            if self._salvage and n > 1:
                values = self._salvage_pairs(pairs)
            else:
                report.failed_pairs += n
                values = np.full(n, np.nan)
        else:
            report.delivered_pairs += n
        if self._sanitizer is not None:
            values = self._sanitizer.sanitize(pairs, values)
        return values

    # ------------------------------------------------------------------ #

    def _single_call(self, pairs: list) -> "np.ndarray | None":
        """One call to the wrapped callback; None on any failure."""
        report = self.report
        start = self._clock()
        try:
            values = self._observe(pairs)
            if not (isinstance(values, np.ndarray) and values.dtype == np.float64):
                values = np.asarray(values, dtype=float)
        except Exception as error:  # noqa: BLE001 — any transport error degrades
            report.exceptions += 1
            _LOG.debug("observe() raised %r for %d pairs", error, len(pairs))
            return None
        if values.shape != (len(pairs),):
            report.malformed += 1
            _LOG.warning(
                "observe() returned shape %s for %d pairs; discarding response",
                values.shape,
                len(pairs),
            )
            return None
        if self._timeout is not None and self._clock() - start > self._timeout:
            report.timeouts += 1
            return None
        return values

    def _attempt(self, pairs: list) -> "np.ndarray | None":
        """Call with retries/backoff; None once the batch is given up on."""
        for attempt in range(1, self._retry.max_attempts + 1):
            values = self._single_call(pairs)
            if values is not None:
                self.breaker.record_success()
                return values
            self.breaker.record_failure()
            if attempt == self._retry.max_attempts or not self.breaker.allow():
                return None
            self.report.retries += 1
            self._sleep(self._retry.delay(attempt))
        return None

    def _salvage_pairs(self, pairs: list) -> np.ndarray:
        """Single-pair fallback after a batch exhausted its retries."""
        report = self.report
        out = np.full(len(pairs), np.nan)
        for k, pair in enumerate(pairs):
            if not self.breaker.allow():
                report.short_circuits += 1
                report.failed_pairs += len(pairs) - k
                break
            report.salvage_calls += 1
            values = self._single_call([pair])
            if values is None:
                self.breaker.record_failure()
                report.failed_pairs += 1
            else:
                self.breaker.record_success()
                out[k] = values[0]
                report.salvaged_pairs += 1
        return out
