"""Reliability layer for the ETA2 closed loop.

The paper's server runs a *daily* loop over live mobile users (Section 2,
Fig. 1); in any real deployment the data-collection leg of that loop is the
unreliable one — transports hang, workers time out, payloads arrive as NaN
or garbage, and the server process itself can die mid-write.  This package
makes every one of those failures survivable:

- :mod:`repro.reliability.observer` — :class:`ResilientObserver` wraps any
  ``observe(pairs)`` callback with per-call timeouts, retry with exponential
  backoff, a circuit breaker, and per-pair salvage so one poison pair cannot
  sink a whole batch.
- :mod:`repro.reliability.sanitize` — :class:`ObservationSanitizer`
  quarantines NaN/inf payloads and gross outliers before they reach
  ``estimate_truth``, with counters of what was dropped and why.
- :mod:`repro.reliability.checkpoint` — :class:`CheckpointManager` writes
  atomic, checksummed, rotated end-of-step checkpoints and restores the
  newest valid one after a crash.
- :mod:`repro.reliability.faults` — deterministic fault injection
  (latency, exceptions, dropped responses, NaN payloads, mid-write
  crashes) so every recovery path is exercised from a seeded RNG.
- :mod:`repro.reliability.chaos` — :class:`ChaosWorld`, a fault-injecting
  wrapper around the simulation world.
- :mod:`repro.reliability.reputation` — :class:`ReputationTracker`, decayed
  cross-day residual scoring with quarantine / probation / reinstatement,
  so misbehaviour that is individually plausible every day is still caught
  over time.
- :mod:`repro.reliability.guards` — :class:`InvariantGuard`, phase-boundary
  invariant checks (finite truths, positive sigmas, bounded expertise,
  valid partitions) with warn / raise / repair policies.
"""

from repro.reliability.chaos import ChaosWorld
from repro.reliability.checkpoint import CheckpointError, CheckpointManager
from repro.reliability.faults import (
    FaultError,
    FaultInjector,
    FaultProfile,
    FaultTimeout,
    FaultyObserver,
    SimulatedCrash,
    VirtualClock,
    crashing_writer,
)
from repro.reliability.observer import (
    CircuitBreaker,
    ObserverReport,
    ResilientObserver,
    RetryPolicy,
)
from repro.reliability.guards import (
    GuardConfig,
    GuardReport,
    GuardViolation,
    InvariantGuard,
    InvariantViolationError,
)
from repro.reliability.reputation import (
    ReputationConfig,
    ReputationScores,
    ReputationSummary,
    ReputationTracker,
)
from repro.reliability.sanitize import ObservationSanitizer, SanitizeReport

__all__ = [
    "ChaosWorld",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "FaultError",
    "FaultInjector",
    "FaultProfile",
    "FaultTimeout",
    "FaultyObserver",
    "GuardConfig",
    "GuardReport",
    "GuardViolation",
    "InvariantGuard",
    "InvariantViolationError",
    "ObservationSanitizer",
    "ObserverReport",
    "ReputationConfig",
    "ReputationScores",
    "ReputationSummary",
    "ReputationTracker",
    "ResilientObserver",
    "RetryPolicy",
    "SanitizeReport",
    "SimulatedCrash",
    "VirtualClock",
    "crashing_writer",
]
