"""Reliability layer for the ETA2 closed loop.

The paper's server runs a *daily* loop over live mobile users (Section 2,
Fig. 1); in any real deployment the data-collection leg of that loop is the
unreliable one — transports hang, workers time out, payloads arrive as NaN
or garbage, and the server process itself can die mid-write.  This package
makes every one of those failures survivable:

- :mod:`repro.reliability.observer` — :class:`ResilientObserver` wraps any
  ``observe(pairs)`` callback with per-call timeouts, retry with exponential
  backoff, a circuit breaker, and per-pair salvage so one poison pair cannot
  sink a whole batch.
- :mod:`repro.reliability.sanitize` — :class:`ObservationSanitizer`
  quarantines NaN/inf payloads and gross outliers before they reach
  ``estimate_truth``, with counters of what was dropped and why.
- :mod:`repro.reliability.checkpoint` — :class:`CheckpointManager` writes
  atomic, checksummed, rotated end-of-step checkpoints and restores the
  newest valid one after a crash.
- :mod:`repro.reliability.faults` — deterministic fault injection
  (latency, exceptions, dropped responses, NaN payloads, mid-write
  crashes) so every recovery path is exercised from a seeded RNG.
- :mod:`repro.reliability.chaos` — :class:`ChaosWorld`, a fault-injecting
  wrapper around the simulation world.
- :mod:`repro.reliability.reputation` — :class:`ReputationTracker`, decayed
  cross-day residual scoring with quarantine / probation / reinstatement,
  so misbehaviour that is individually plausible every day is still caught
  over time.
- :mod:`repro.reliability.guards` — :class:`InvariantGuard`, phase-boundary
  invariant checks (finite truths, positive sigmas, bounded expertise,
  valid partitions) with warn / raise / repair policies.
- :mod:`repro.reliability.retry` — the shared deterministic
  backoff-with-jitter :class:`RetryPolicy` used by the observer and the
  sweep supervisor.
- :mod:`repro.reliability.supervisor` — :class:`SupervisedExecutor`,
  crash-tolerant sweep execution: worker-crash resubmission, in-worker
  deadlines with a hung-worker watchdog, retries, dead-letter quarantine,
  graceful SIGINT/SIGTERM drain, and a resumable JSONL run journal.
"""

from repro.reliability.chaos import ChaosWorld
from repro.reliability.checkpoint import CheckpointError, CheckpointManager
from repro.reliability.faults import (
    FaultError,
    FaultInjector,
    FaultProfile,
    FaultTimeout,
    FaultyObserver,
    SimulatedCrash,
    VirtualClock,
    WorkerFaultProfile,
    crashing_writer,
)
from repro.reliability.retry import RetryPolicy
from repro.reliability.supervisor import (
    DeadLetter,
    JobTimeout,
    SupervisedExecutor,
    SupervisedResult,
    SupervisorConfig,
    SweepInterrupted,
    job_key,
    load_journal_results,
    read_journal,
)
from repro.reliability.observer import (
    CircuitBreaker,
    ObserverReport,
    ResilientObserver,
)
from repro.reliability.guards import (
    GuardConfig,
    GuardReport,
    GuardViolation,
    InvariantGuard,
    InvariantViolationError,
)
from repro.reliability.reputation import (
    ReputationConfig,
    ReputationScores,
    ReputationSummary,
    ReputationTracker,
)
from repro.reliability.sanitize import (
    IngestSchema,
    ObservationSanitizer,
    SanitizeReport,
    ScreenResult,
)

__all__ = [
    "ChaosWorld",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "DeadLetter",
    "FaultError",
    "FaultInjector",
    "FaultProfile",
    "FaultTimeout",
    "FaultyObserver",
    "GuardConfig",
    "GuardReport",
    "GuardViolation",
    "IngestSchema",
    "InvariantGuard",
    "InvariantViolationError",
    "JobTimeout",
    "ObservationSanitizer",
    "ObserverReport",
    "ReputationConfig",
    "ReputationScores",
    "ReputationSummary",
    "ReputationTracker",
    "ResilientObserver",
    "RetryPolicy",
    "SanitizeReport",
    "ScreenResult",
    "SimulatedCrash",
    "SupervisedExecutor",
    "SupervisedResult",
    "SupervisorConfig",
    "SweepInterrupted",
    "VirtualClock",
    "WorkerFaultProfile",
    "crashing_writer",
    "job_key",
    "load_journal_results",
    "read_journal",
]
