"""``ChaosWorld``: fault-injecting wrapper around the simulation world.

Drops between the engine and a :class:`~repro.simulation.world.World`:
observation sampling still comes from the hidden ground truth, but the
*delivery* of those observations now fails per a :class:`FaultProfile` —
calls raise, stall on the virtual clock, or return corrupted payloads.
Everything else (truth values, drift, capacities, adversaries) delegates to
the wrapped world untouched, so any code written against ``World`` runs
against ``ChaosWorld`` unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.reliability.faults import FaultInjector, FaultProfile, VirtualClock

__all__ = ["ChaosWorld"]


class ChaosWorld:
    """A :class:`World` whose ``observe`` path fails like a real deployment."""

    def __init__(
        self,
        world,
        profile: FaultProfile,
        seed=None,
        clock: "VirtualClock | None" = None,
    ):
        self._world = world
        self.injector = FaultInjector(profile, seed=seed, clock=clock)

    @property
    def wrapped(self):
        """The underlying fault-free world."""
        return self._world

    @property
    def fault_counts(self) -> dict:
        return dict(self.injector.counts)

    def observe_pairs(self, pairs: Sequence) -> list:
        self.injector.before_call()
        return list(self.injector.corrupt(self._world.observe_pairs(pairs)))

    def observe(self, user: int, task: int) -> float:
        return self.observe_pairs([(user, task)])[0]

    def __getattr__(self, name: str):
        # Everything not overridden (true_values, advance_day, drift, ...)
        # behaves exactly like the fault-free world.
        return getattr(self._world, name)
