"""Cross-day worker reputation: residual scoring, quarantine, probation.

The per-day defences (`reliability.sanitize`, `core.robust`) forget
everything at midnight: a colluding worker who is individually plausible
every single day never trips them.  This module remembers.  After each
day's truth analysis the tracker folds every user's residuals into decayed
running sums — the same exponential decay ``alpha`` as the expertise
updates of Eqs. (7)-(9), so reputation and expertise age on the same
clock — and computes three scores per user:

**Bias t-score** — ``|mean z| sqrt(n) / std z`` over the expertise-
standardized residuals ``z = (x_ij - mu_j) u_i^{d_j} / sigma_j``.  The
crucial property: Eq. 9 *absorbs* a persistent offset into a lower
expertise estimate, shrinking ``mean z`` and ``std z`` by the same factor
``u``, so their ratio survives absorption.  Catches consistently biased
reporters that raw residual magnitudes cannot.

**Variance score** — decayed mean of ``z^2``.  Under the honest model this
sits near 1 *by construction* (Eq. 9 drives it there).  Naively that makes
it useless — absorption parks adversaries near 1 too — but absorption
*stalls* in the truth-capture regime: colluders who share tasks mutually
confirm each other, the truth estimate is dragged partway toward them,
Eq. 9 sees only modest deviations, and their expertise stays near 1 while
their true residuals are large.  There ``z^2`` lands at 4-14 against an
honest ceiling near 1.3, and the variance score is the *only* working
detector (parity-signed collusion cancels the bias score, and sigma noise
plus capture shrinkage kill the consistency score).

**Consistency score** — ``(mean |r|)^2 / Var(|r|)`` over the
*base-number-unit* residuals ``r = (x_ij - mu_j) / sigma_j``, gated on
``mean |r| >= min_deviation``.  An honest ``N(0, s^2)`` reporter's
``|r|`` is half-normal whatever their expertise, giving a scale-free
score of ``(2/pi)/(1 - 2/pi) ~ 1.75``.  A fabricator who always lands a
fixed distance from the truth (the colluding adversary at ``3 sigma``)
has nearly constant ``|r|`` — tiny variance, score an order of magnitude
higher.  The deviation gate keeps suspiciously-consistent *accurate*
workers (experts!) unflagged.

**Duplication score** — the decayed fraction of a user's observations
that land within ``duplicate_tolerance * sigma_j`` of *another user's*
report on the same task.  Two honest observers essentially never coincide
that closely (their reports differ by ~``sqrt(2) sigma / u``), but
colluders who coordinate on a value coincide constantly.  This is the
counter to the **truth-capture regime**, where residual scores go
structurally blind: once colluders dominate a task's observer set, the
truth estimate *is* their agreed value, their residuals are tiny, and
Eq. 9 certifies them as experts — yet their mutual agreement remains
glaringly non-physical.  (Cf. copying detection in truth discovery:
sources that agree far more than independent noise allows.)

A user whose score crosses a threshold is **quarantined**: the allocators
drop them from every assignment (see ``AllocationProblem.eligible``).
After ``probation_days`` they re-enter on **probation** — eligible again,
so the system keeps paying a small evidence-gathering cost instead of
banning forever on day-one evidence — and are re-quarantined immediately
if any score trips again, or reinstated to full standing after
``reinstate_days`` clean days.

Statistically invisible attackers (e.g. a uniform-random spammer whose
residuals look exactly like a legitimately terrible worker's) are out of
scope by design: expertise weighting already drives their influence to
zero, and any rule that flagged them would flag honest novices too.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ACTIVE",
    "QUARANTINED",
    "PROBATION",
    "ReputationConfig",
    "ReputationScores",
    "ReputationSummary",
    "ReputationTracker",
]

_LOG = logging.getLogger(__name__)

#: User standings (small ints so the status vector serializes compactly).
ACTIVE = 0
QUARANTINED = 1
PROBATION = 2

_STATUS_NAMES = {ACTIVE: "active", QUARANTINED: "quarantined", PROBATION: "probation"}

#: Variance floor when converting sums to scores (a user whose residuals
#: are *exactly* constant would otherwise divide by zero — and such a user
#: is precisely who the consistency score must flag hardest).
_VAR_FLOOR = 1e-12


@dataclass(frozen=True)
class ReputationConfig:
    """Thresholds and timing knobs for :class:`ReputationTracker`.

    Attributes
    ----------
    alpha:
        Per-day decay of the residual sums.  Use the system's expertise
        decay so both memories age together (see the tuning note in
        ``docs/architecture.md``).
    bias_threshold:
        Flag when the bias t-score exceeds this.  Under the null the
        t-score is ~N(0,1); 5.0 gives a per-user-day false-positive rate
        around ``3e-7`` before decay-induced dependence.
    variance_threshold:
        Flag when the decayed mean of ``z^2`` exceeds this.  Honest users
        sit near 1 with an empirical ceiling around 1.3 (at the default
        ``min_observations``); colluders in the truth-capture regime,
        where expertise absorption stalls, land at 4-14.  4.0 splits the
        two with wide margins on both sides.
    consistency_threshold:
        Flag when ``(mean |r|)^2 / Var(|r|)`` exceeds this and the
        deviation gate passes.  The idealized honest half-normal value is
        1.75, but in the closed loop sigma-estimate noise spreads a
        colluder's ``|r|`` considerably, so the workable threshold is much
        lower than the idealized adversary score: 3.0 sits just above the
        worst honest score seen after the warm-up day while catching
        every colluder (the warm-up day itself is excluded via
        ``grace_days`` — random allocation makes honest novices look
        wild there).
    min_deviation:
        The consistency gate: only users whose mean ``|r|`` exceeds this
        many base numbers are eligible for a consistency flag.
    min_observations:
        No score is evaluated until a user's decayed observation count
        reaches this — small-sample scores are noise.
    duplicate_tolerance:
        Two same-task reports within this many ``sigma_j`` of each other
        count as a duplicate pair.  This must be far inside honest expert
        precision: the max-quality allocator deliberately co-assigns the
        strongest experts, whose reports legitimately differ by only
        ``sqrt(2) sigma / u`` — a few percent of ``sigma`` at high ``u``.
        At 0.002, the worst honest user's decayed duplicate rate stays
        below ~0.15 while exact-agreement colluders never drop under
        ~0.5.  (A colluder who jitters their copies by more than this
        slips the duplication net — but the jitter then shows up in the
        residual scores instead.)
    duplicate_threshold:
        Flag when the decayed duplicate fraction exceeds this.  0.3 sits
        about twice the honest ceiling and half the colluder floor
        observed at the default tolerance.
    grace_days:
        No user is flagged during the first this-many recorded days.
        Day one runs on random warm-up allocation with unknown expertise,
        where honest low-expertise users produce residuals as extreme as
        any adversary's.  (The duplication score is *not* grace-gated:
        near-exact agreement is damning under any allocation.)
    probation_days:
        Days a quarantined user sits out before re-entering on probation.
    reinstate_days:
        Clean probation days required to return to full standing.
    """

    alpha: float = 0.5
    bias_threshold: float = 5.0
    variance_threshold: float = 4.0
    consistency_threshold: float = 3.0
    min_deviation: float = 1.5
    min_observations: float = 10.0
    duplicate_tolerance: float = 0.002
    duplicate_threshold: float = 0.3
    grace_days: int = 1
    probation_days: int = 2
    reinstate_days: int = 2

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        for name in ("bias_threshold", "variance_threshold", "consistency_threshold"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        if self.min_deviation < 0.0:
            raise ValueError("min_deviation must be non-negative")
        if self.min_observations < 2.0:
            raise ValueError("min_observations must be at least 2")
        if self.duplicate_tolerance <= 0.0:
            raise ValueError("duplicate_tolerance must be positive")
        if not 0.0 < self.duplicate_threshold <= 1.0:
            raise ValueError("duplicate_threshold must lie in (0, 1]")
        if self.grace_days < 0:
            raise ValueError("grace_days must be non-negative")
        if self.probation_days < 1:
            raise ValueError("probation_days must be at least 1")
        if self.reinstate_days < 1:
            raise ValueError("reinstate_days must be at least 1")


@dataclass(frozen=True)
class ReputationScores:
    """Per-user score vectors at one point in time (NaN below min count)."""

    counts: np.ndarray
    bias_t: np.ndarray
    variance: np.ndarray
    consistency: np.ndarray
    mean_abs_residual: np.ndarray
    duplication: np.ndarray


@dataclass(frozen=True)
class ReputationSummary:
    """What one ``record_day`` call changed — attached to day results."""

    day: int
    quarantined: tuple
    probation: tuple
    newly_quarantined: tuple
    newly_probation: tuple
    reinstated: tuple
    #: Everyone quarantined at any point so far — the cumulative detection
    #: record.  A user on end-of-horizon probation is still a detection;
    #: only a clean probation run (``reinstated``) clears the suspicion.
    ever_quarantined: tuple = ()

    def to_dict(self) -> dict:
        return {
            "day": self.day,
            "quarantined": list(self.quarantined),
            "probation": list(self.probation),
            "newly_quarantined": list(self.newly_quarantined),
            "newly_probation": list(self.newly_probation),
            "reinstated": list(self.reinstated),
            "ever_quarantined": list(self.ever_quarantined),
        }


@dataclass(frozen=True)
class _DayFlags:
    flagged: np.ndarray
    evaluated: np.ndarray
    #: The duplication component alone — exempt from the grace window.
    duplication: np.ndarray


class ReputationTracker:
    """Decayed cross-day residual scores with a quarantine state machine."""

    def __init__(self, n_users: int, config: "ReputationConfig | None" = None):
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        self._n_users = int(n_users)
        self.config = config if config is not None else ReputationConfig()
        self._count = np.zeros(self._n_users)
        self._sum_z = np.zeros(self._n_users)
        self._sum_z2 = np.zeros(self._n_users)
        self._sum_abs_r = np.zeros(self._n_users)
        self._sum_r2 = np.zeros(self._n_users)
        self._sum_dup = np.zeros(self._n_users)
        self._status = np.full(self._n_users, ACTIVE, dtype=int)
        self._days_in_status = np.zeros(self._n_users, dtype=int)
        self._ever_quarantined = np.zeros(self._n_users, dtype=bool)
        self._day = 0

    # ------------------------------------------------------------------
    # Introspection

    @property
    def n_users(self) -> int:
        return self._n_users

    @property
    def day(self) -> int:
        """Number of ``record_day`` calls folded in so far."""
        return self._day

    @property
    def status(self) -> np.ndarray:
        """Per-user standing (``ACTIVE``/``QUARANTINED``/``PROBATION``)."""
        return self._status.copy()

    @property
    def eligible(self) -> np.ndarray:
        """Boolean mask of users the allocators may assign tasks to."""
        return self._status != QUARANTINED

    @property
    def quarantined_users(self) -> tuple:
        return tuple(int(u) for u in np.flatnonzero(self._status == QUARANTINED))

    @property
    def probation_users(self) -> tuple:
        return tuple(int(u) for u in np.flatnonzero(self._status == PROBATION))

    @property
    def ever_quarantined_users(self) -> tuple:
        """Everyone quarantined at any point in this tracker's history."""
        return tuple(int(u) for u in np.flatnonzero(self._ever_quarantined))

    def status_name(self, user: int) -> str:
        return _STATUS_NAMES[int(self._status[user])]

    # ------------------------------------------------------------------
    # Scoring

    def scores(self) -> ReputationScores:
        """Current per-user scores; NaN wherever the decayed count is low."""
        counts = self._count
        enough = counts >= self.config.min_observations
        safe_n = np.maximum(counts, _VAR_FLOOR)
        mean_z = self._sum_z / safe_n
        var_z = np.maximum(self._sum_z2 / safe_n - mean_z**2, _VAR_FLOOR)
        bias_t = np.abs(mean_z) * np.sqrt(safe_n) / np.sqrt(var_z)
        variance = self._sum_z2 / safe_n
        mean_abs_r = self._sum_abs_r / safe_n
        var_abs_r = np.maximum(self._sum_r2 / safe_n - mean_abs_r**2, _VAR_FLOOR)
        consistency = mean_abs_r**2 / var_abs_r
        duplication = self._sum_dup / safe_n
        nanfill = np.where(enough, 1.0, np.nan)
        return ReputationScores(
            counts=counts.copy(),
            bias_t=bias_t * nanfill,
            variance=variance * nanfill,
            consistency=consistency * nanfill,
            mean_abs_residual=mean_abs_r * nanfill,
            duplication=duplication * nanfill,
        )

    def _evaluate(self) -> _DayFlags:
        scores = self.scores()
        evaluated = self._count >= self.config.min_observations
        with np.errstate(invalid="ignore"):
            bias_flag = scores.bias_t > self.config.bias_threshold
            variance_flag = scores.variance > self.config.variance_threshold
            consistency_flag = (scores.consistency > self.config.consistency_threshold) & (
                scores.mean_abs_residual >= self.config.min_deviation
            )
            duplication_flag = scores.duplication > self.config.duplicate_threshold
        flagged = evaluated & (bias_flag | variance_flag | consistency_flag | duplication_flag)
        return _DayFlags(
            flagged=flagged, evaluated=evaluated, duplication=evaluated & duplication_flag
        )

    # ------------------------------------------------------------------
    # Recording

    def record_day(
        self,
        mask: np.ndarray,
        values: np.ndarray,
        truths: np.ndarray,
        sigmas: np.ndarray,
        task_expertise: np.ndarray,
    ) -> ReputationSummary:
        """Fold one day's residuals in and advance the state machine.

        Parameters mirror the truth-analysis outputs: ``mask``/``values``
        are the ``(n_users, n_tasks)`` observation matrix, ``truths`` and
        ``sigmas`` the day's estimates, ``task_expertise`` the
        ``u_{i, d_j}`` matrix used for standardization.  Tasks with NaN
        truth (unobserved or degraded) contribute nothing.  Sums decay by
        ``alpha`` for every non-quarantined user; a quarantined user's
        evidence is *frozen* — they collect no data while excluded, so
        decaying their sums would only erode the reason they were flagged
        until ``min_observations`` failed and they slipped back in
        unexamined.  The second chance happens on probation instead:
        decay resumes there, and fresh clean days wash the old evidence
        out.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self._n_users:
            raise ValueError("observation mask has the wrong number of users")
        values = np.asarray(values, dtype=float)
        truths = np.asarray(truths, dtype=float)
        sigmas = np.asarray(sigmas, dtype=float)
        task_expertise = np.asarray(task_expertise, dtype=float)

        usable = mask & np.isfinite(values) & np.isfinite(truths)[None, :]
        safe_truths = np.where(np.isfinite(truths), truths, 0.0)
        safe_sigmas = np.where(np.isfinite(sigmas) & (sigmas > 0), sigmas, 1.0)
        r = np.where(usable, (values - safe_truths[None, :]) / safe_sigmas[None, :], 0.0)
        z = np.where(usable, r * task_expertise, 0.0)

        decay = np.where(self._status == QUARANTINED, 1.0, self.config.alpha)
        self._count = decay * self._count + usable.sum(axis=1)
        self._sum_z = decay * self._sum_z + z.sum(axis=1)
        self._sum_z2 = decay * self._sum_z2 + (z**2).sum(axis=1)
        self._sum_abs_r = decay * self._sum_abs_r + np.abs(r).sum(axis=1)
        self._sum_r2 = decay * self._sum_r2 + (r**2).sum(axis=1)
        self._sum_dup = decay * self._sum_dup + self._duplicate_hits(usable, values, safe_sigmas)
        self._day += 1
        flags = self._evaluate()
        if self._day <= self.config.grace_days:
            # Residual scores are unreliable under warm-up allocation, but
            # near-exact agreement between users is damning regardless.
            flags = _DayFlags(
                flagged=flags.duplication, evaluated=flags.evaluated, duplication=flags.duplication
            )
        return self._advance(flags)

    def _duplicate_hits(self, usable: np.ndarray, values: np.ndarray, sigmas: np.ndarray) -> np.ndarray:
        """Per-user count of observations that near-duplicate another
        user's report on the same task (within ``duplicate_tolerance``
        sigmas).  Sorting the flattened observations by (task, value)
        makes every duplicate pair adjacent, so one linear diff finds
        them all."""
        rows, cols = np.nonzero(usable)
        if rows.size < 2:
            return np.zeros(self._n_users)
        vals = values[rows, cols]
        order = np.lexsort((vals, cols))
        r_s, c_s, v_s = rows[order], cols[order], vals[order]
        same_task = c_s[1:] == c_s[:-1]
        close = same_task & (np.diff(v_s) <= self.config.duplicate_tolerance * sigmas[c_s[1:]])
        hit = np.zeros(v_s.size, dtype=bool)
        hit[1:] |= close
        hit[:-1] |= close
        return np.bincount(r_s[hit], minlength=self._n_users).astype(float)

    def _advance(self, flags: _DayFlags) -> ReputationSummary:
        status = self._status
        days = self._days_in_status

        to_quarantine = flags.flagged & (status != QUARANTINED)
        # Quarantined users first serve out their term...
        serving = (status == QUARANTINED) & ~to_quarantine
        days[serving] += 1
        to_probation = serving & (days >= self.config.probation_days)
        # ...and probation users either relapse (handled via to_quarantine)
        # or earn reinstatement with clean days.
        clean_probation = (status == PROBATION) & ~flags.flagged
        days[clean_probation] += 1
        to_reinstate = clean_probation & (days >= self.config.reinstate_days)

        status[to_probation] = PROBATION
        days[to_probation] = 0
        status[to_reinstate] = ACTIVE
        days[to_reinstate] = 0
        status[to_quarantine] = QUARANTINED
        days[to_quarantine] = 0
        self._ever_quarantined |= to_quarantine

        newly_quarantined = tuple(int(u) for u in np.flatnonzero(to_quarantine))
        if newly_quarantined:
            _LOG.warning(
                "reputation day %d: quarantined users %s", self._day, newly_quarantined
            )
        return ReputationSummary(
            day=self._day,
            quarantined=self.quarantined_users,
            probation=self.probation_users,
            newly_quarantined=newly_quarantined,
            newly_probation=tuple(int(u) for u in np.flatnonzero(to_probation)),
            reinstated=tuple(int(u) for u in np.flatnonzero(to_reinstate)),
            ever_quarantined=self.ever_quarantined_users,
        )

    # ------------------------------------------------------------------
    # Persistence

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (round-trips via :meth:`load_state`)."""
        return {
            "n_users": self._n_users,
            "day": self._day,
            "config": {
                "alpha": self.config.alpha,
                "bias_threshold": self.config.bias_threshold,
                "variance_threshold": self.config.variance_threshold,
                "consistency_threshold": self.config.consistency_threshold,
                "min_deviation": self.config.min_deviation,
                "min_observations": self.config.min_observations,
                "duplicate_tolerance": self.config.duplicate_tolerance,
                "duplicate_threshold": self.config.duplicate_threshold,
                "grace_days": self.config.grace_days,
                "probation_days": self.config.probation_days,
                "reinstate_days": self.config.reinstate_days,
            },
            "count": self._count.tolist(),
            "sum_z": self._sum_z.tolist(),
            "sum_z2": self._sum_z2.tolist(),
            "sum_abs_r": self._sum_abs_r.tolist(),
            "sum_r2": self._sum_r2.tolist(),
            "sum_dup": self._sum_dup.tolist(),
            "status": self._status.tolist(),
            "days_in_status": self._days_in_status.tolist(),
            "ever_quarantined": self._ever_quarantined.tolist(),
        }

    @classmethod
    def load_state(cls, state: dict) -> "ReputationTracker":
        config = ReputationConfig(**state["config"])
        tracker = cls(int(state["n_users"]), config)
        tracker._day = int(state["day"])
        tracker._count = np.asarray(state["count"], dtype=float)
        tracker._sum_z = np.asarray(state["sum_z"], dtype=float)
        tracker._sum_z2 = np.asarray(state["sum_z2"], dtype=float)
        tracker._sum_abs_r = np.asarray(state["sum_abs_r"], dtype=float)
        tracker._sum_r2 = np.asarray(state["sum_r2"], dtype=float)
        tracker._sum_dup = np.asarray(state.get("sum_dup", np.zeros(tracker._n_users)), dtype=float)
        tracker._status = np.asarray(state["status"], dtype=int)
        tracker._days_in_status = np.asarray(state["days_in_status"], dtype=int)
        tracker._ever_quarantined = np.asarray(
            state.get("ever_quarantined", tracker._status != ACTIVE), dtype=bool
        )
        for name in (
            "count", "sum_z", "sum_z2", "sum_abs_r", "sum_r2", "sum_dup", "status", "days_in_status"
        ):
            if getattr(tracker, f"_{name}").shape != (tracker._n_users,):
                raise ValueError(f"reputation state field {name!r} has the wrong length")
        return tracker
