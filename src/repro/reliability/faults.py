"""Deterministic fault injection: the chaos layer of the reliability stack.

Recovery code that is never exercised is broken code waiting for its first
outage.  This module injects every failure mode the reliability layer
claims to survive — latency, transport exceptions, timeouts, dropped
responses, NaN payloads, gross-outlier payloads, and mid-write crashes —
*deterministically*, from a seeded RNG, so chaos tests are reproducible.

- :class:`FaultProfile` — the knobs (all rates in [0, 1]).
- :class:`WorkerFaultProfile` — process-level kill / hang / raise faults
  drawn per (job, attempt) inside sweep worker processes, for chaos-testing
  the :class:`~repro.reliability.supervisor.SupervisedExecutor`.
- :class:`FaultInjector` — draws faults from a seeded stream; shared by the
  observer wrapper and the simulation's :class:`~repro.reliability.chaos.ChaosWorld`.
- :class:`FaultyObserver` — wraps an ``observe(pairs)`` callback with
  injected faults (what a flaky transport looks like from the server).
- :class:`VirtualClock` — a manually advanced monotonic clock; latency
  faults advance it, so timeout handling is tested without real sleeping.
- :func:`crashing_writer` — a file writer that dies partway through, for
  exercising the checkpointer's atomic-write guarantee.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.rng import ensure_rng

__all__ = [
    "FaultError",
    "FaultTimeout",
    "SimulatedCrash",
    "FaultProfile",
    "WorkerFaultProfile",
    "VirtualClock",
    "FaultInjector",
    "FaultyObserver",
    "crashing_writer",
]


class FaultError(RuntimeError):
    """An injected transport failure (the whole call errors out)."""


class FaultTimeout(FaultError):
    """An injected transport-level timeout (deadline exceeded downstream)."""


class SimulatedCrash(RuntimeError):
    """An injected process crash (e.g. power loss mid-write)."""


@dataclass(frozen=True)
class FaultProfile:
    """Fault rates for one chaos scenario.

    Call-level faults (one draw per ``observe`` call):

    - ``exception_rate`` — the call raises :class:`FaultError`;
    - ``timeout_rate`` — the call raises :class:`FaultTimeout`;
    - ``latency_rate`` / ``latency`` — the call "takes" ``latency`` seconds
      on the injector's :class:`VirtualClock` (tripping elapsed-based
      timeout checks) but still returns data.

    Pair-level faults (one draw per returned value):

    - ``drop_rate`` — the response never arrives (NaN);
    - ``nan_rate`` — the response arrives but its payload is NaN;
    - ``outlier_rate`` / ``outlier_offset`` — the payload is displaced by
      ``±outlier_offset`` (a gross outlier for the sanitizer to catch).
    """

    exception_rate: float = 0.0
    timeout_rate: float = 0.0
    latency_rate: float = 0.0
    latency: float = 0.0
    drop_rate: float = 0.0
    nan_rate: float = 0.0
    outlier_rate: float = 0.0
    outlier_offset: float = 1e6

    def __post_init__(self):
        for name in ("exception_rate", "timeout_rate", "latency_rate", "drop_rate", "nan_rate", "outlier_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.exception_rate + self.timeout_rate > 1.0:
            raise ValueError("exception_rate + timeout_rate must not exceed 1")
        if self.drop_rate + self.nan_rate + self.outlier_rate > 1.0:
            raise ValueError("drop_rate + nan_rate + outlier_rate must not exceed 1")
        if self.latency < 0.0:
            raise ValueError("latency must be non-negative")
        if self.outlier_offset <= 0.0:
            raise ValueError("outlier_offset must be positive")

    @property
    def call_fault_rate(self) -> float:
        return self.exception_rate + self.timeout_rate

    @property
    def pair_fault_rate(self) -> float:
        return self.drop_rate + self.nan_rate + self.outlier_rate

    @property
    def active(self) -> bool:
        return (
            self.call_fault_rate > 0.0
            or self.pair_fault_rate > 0.0
            or (self.latency_rate > 0.0 and self.latency > 0.0)
        )


@dataclass(frozen=True)
class WorkerFaultProfile:
    """Process-level faults injected *inside* sweep worker processes.

    Where :class:`FaultProfile` corrupts the data a transport delivers,
    this profile breaks the worker running a sweep job — the failure modes
    the :class:`~repro.reliability.supervisor.SupervisedExecutor` exists to
    survive:

    - ``kill_rate`` — the worker dies via ``os._exit`` (OOM-killer /
      segfault stand-in; breaks the whole process pool);
    - ``hang_rate`` / ``hang_seconds`` — the worker stalls.  A *soft* hang
      is interruptible by the in-worker deadline alarm; with
      ``hard_hang=True`` the worker blocks ``SIGALRM`` first, so only the
      parent-side watchdog can reclaim it;
    - ``raise_rate`` — the job raises :class:`FaultError` instead of
      running.

    Draws are *stateless and deterministic*: each ``(job key, attempt)``
    pair hashes — with ``seed`` — to one uniform draw, so the same job
    fails the same way on every replay regardless of worker identity or
    scheduling, and a retried attempt rolls a fresh (but reproducible)
    draw.  ``fault_attempts`` bounds injection to the first N attempts of
    each job; the default 1 means "every fault clears on retry", which
    keeps chaos sweeps completing deterministically.
    """

    kill_rate: float = 0.0
    hang_rate: float = 0.0
    raise_rate: float = 0.0
    hang_seconds: float = 3600.0
    hard_hang: bool = False
    seed: int = 0
    fault_attempts: int = 1

    def __post_init__(self):
        for name in ("kill_rate", "hang_rate", "raise_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.kill_rate + self.hang_rate + self.raise_rate > 1.0:
            raise ValueError("kill_rate + hang_rate + raise_rate must not exceed 1")
        if self.hang_seconds <= 0.0:
            raise ValueError("hang_seconds must be positive")
        if self.fault_attempts < 0:
            raise ValueError("fault_attempts must be non-negative")

    @property
    def active(self) -> bool:
        return self.kill_rate + self.hang_rate + self.raise_rate > 0.0

    def action(self, job_key: str, attempt: int) -> "str | None":
        """The fault (``"kill"``/``"hang"``/``"raise"``/None) for one attempt."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if attempt > self.fault_attempts or not self.active:
            return None
        digest = hashlib.sha256(f"{self.seed}:{job_key}:{attempt}".encode("utf-8")).digest()
        roll = int.from_bytes(digest[:8], "big") / 2.0**64
        if roll < self.kill_rate:
            return "kill"
        if roll < self.kill_rate + self.hang_rate:
            return "hang"
        if roll < self.kill_rate + self.hang_rate + self.raise_rate:
            return "raise"
        return None


class VirtualClock:
    """A monotonic clock that only moves when told to.

    Passed as ``clock`` to both the fault injector (which advances it on
    latency faults) and the :class:`ResilientObserver`/:class:`CircuitBreaker`
    (which read it), so timeout and recovery behaviour is tested in zero
    wall-clock time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    __call__ = now

    def advance(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("time only moves forward")
        self._now += float(seconds)


class FaultInjector:
    """Draws faults from a seeded stream according to a :class:`FaultProfile`."""

    def __init__(self, profile: FaultProfile, seed=None, clock: "VirtualClock | None" = None):
        self.profile = profile
        self._rng = ensure_rng(seed)
        self._clock = clock
        #: Injected-fault counters by kind (for assertions and operator logs).
        self.counts: dict = {
            "exceptions": 0,
            "timeouts": 0,
            "latency": 0,
            "drops": 0,
            "nan_payloads": 0,
            "outliers": 0,
        }

    def before_call(self) -> None:
        """Roll the call-level faults; raises or advances the clock."""
        profile = self.profile
        if profile.call_fault_rate > 0.0:
            roll = self._rng.random()
            if roll < profile.exception_rate:
                self.counts["exceptions"] += 1
                raise FaultError("injected transport failure")
            if roll < profile.exception_rate + profile.timeout_rate:
                self.counts["timeouts"] += 1
                raise FaultTimeout("injected transport timeout")
        if profile.latency_rate > 0.0 and self._rng.random() < profile.latency_rate:
            self.counts["latency"] += 1
            if self._clock is not None:
                self._clock.advance(profile.latency)

    def corrupt(self, values: Sequence) -> np.ndarray:
        """Apply the pair-level faults to a batch of delivered values."""
        values = np.array(values, dtype=float)
        profile = self.profile
        if profile.pair_fault_rate == 0.0 or values.size == 0:
            return values
        rolls = self._rng.random(values.shape[0])
        dropped = rolls < profile.drop_rate
        nan_payload = (~dropped) & (rolls < profile.drop_rate + profile.nan_rate)
        outlier = (~dropped) & (~nan_payload) & (rolls < profile.pair_fault_rate)
        self.counts["drops"] += int(dropped.sum())
        self.counts["nan_payloads"] += int(nan_payload.sum())
        self.counts["outliers"] += int(outlier.sum())
        values[dropped | nan_payload] = np.nan
        if np.any(outlier):
            signs = np.where(self._rng.random(int(outlier.sum())) < 0.5, -1.0, 1.0)
            values[outlier] = values[outlier] + signs * profile.outlier_offset
        return values


class FaultyObserver:
    """Wrap an ``observe(pairs)`` callback with injected faults.

    The result is what a flaky field deployment looks like from the server:
    calls that raise, time out, stall, or deliver corrupt payloads — all
    deterministic from ``seed``.
    """

    def __init__(
        self,
        observe: Callable,
        profile: FaultProfile,
        seed=None,
        clock: "VirtualClock | None" = None,
    ):
        self._observe = observe
        self.injector = FaultInjector(profile, seed=seed, clock=clock)

    @property
    def fault_counts(self) -> dict:
        return dict(self.injector.counts)

    def __call__(self, pairs: Sequence):
        self.injector.before_call()
        return self.injector.corrupt(self._observe(pairs))


def crashing_writer(crash_after_fraction: float = 0.5) -> Callable:
    """A ``writer(path, text)`` that writes a prefix then raises
    :class:`SimulatedCrash` — inject into
    :func:`repro.core.serialization.atomic_write_text` (or the
    checkpointer) to simulate power loss mid-write.
    """
    if not 0.0 <= crash_after_fraction <= 1.0:
        raise ValueError("crash_after_fraction must lie in [0, 1]")

    def writer(path: "str | Path", text: str) -> None:
        cut = int(len(text) * crash_after_fraction)
        Path(path).write_text(text[:cut])
        raise SimulatedCrash(f"crashed after writing {cut}/{len(text)} characters")

    return writer
