"""Shared deterministic retry/backoff policy.

One backoff implementation serves every retrying component in the repo —
the :class:`~repro.reliability.observer.ResilientObserver` (transient
``observe()`` failures) and the
:class:`~repro.reliability.supervisor.SupervisedExecutor` (crashed, hung,
or raising sweep jobs).  It lives in its own module so neither consumer
imports the other; ``repro.reliability.observer.RetryPolicy`` remains a
backward-compatible re-export.

The optional *jitter* is deterministic: instead of drawing from a global
RNG (which would make retry timing — and therefore chaos-test traces —
depend on call order), the jitter fraction is derived by hashing an
opaque caller-supplied token (e.g. a job key) together with the retry
number.  Equal inputs always produce equal delays; distinct jobs still
decorrelate their retry storms.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


def _jitter_fraction(token, retry_number: int) -> float:
    """A deterministic uniform-[0, 1) draw from ``(token, retry_number)``."""
    digest = hashlib.sha256(f"{token}:{retry_number}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry schedule for failed calls or jobs.

    ``max_attempts`` counts the first try: 3 means one call plus at most two
    retries.  The delay before retry *n* (1-based) is
    ``base_delay * backoff_factor ** (n - 1)``, capped at ``max_delay``.
    ``jitter`` (a fraction in [0, 1]) deterministically shrinks each delay
    by up to that fraction, keyed on the ``token`` passed to :meth:`delay`.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0.0:
            raise ValueError("base_delay must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be at least base_delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def delay(self, retry_number: int, token=None) -> float:
        """Backoff delay (seconds) before the ``retry_number``-th retry.

        ``token`` seeds the deterministic jitter; callers retrying many
        independent units (the sweep supervisor retrying jobs) pass a
        per-unit key so their delays decorrelate while staying replayable.
        """
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        delay = min(self.base_delay * self.backoff_factor ** (retry_number - 1), self.max_delay)
        if self.jitter > 0.0:
            delay *= 1.0 - self.jitter * _jitter_fraction(token, retry_number)
        return delay
