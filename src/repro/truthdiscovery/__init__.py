"""Truth-discovery baselines the paper compares against (Section 6.3).

All four estimate per-task truths from a sparse user x task observation
matrix; the first three additionally infer a scalar per-user *reliability*
that the comparison approaches use for task allocation:

- :class:`~repro.truthdiscovery.hubs_authorities.HubsAuthorities` — source
  reliability is the sum of the credibility of its data items; item
  credibility is the reliability-weighted support from agreeing sources.
- :class:`~repro.truthdiscovery.average_log.AverageLog` — reliability is the
  average credibility of a source's items scaled by the logarithm of how many
  items it provided.
- :class:`~repro.truthdiscovery.truthfinder.TruthFinder` — item confidence is
  the probability the item is accurate, combined across sources in
  log-odds space; source trustworthiness is the average confidence of its
  items.
- :class:`~repro.truthdiscovery.mean.MeanBaseline` — the plain average
  (the paper's lower-bound "Baseline").

The published methods target categorical claims; per the paper's evaluation
we use their standard numeric adaptation, where agreement between two
observations of the same task is a Gaussian kernel on their gap normalised by
the task's observation spread.
"""

from repro.truthdiscovery.average_log import AverageLog
from repro.truthdiscovery.base import ObservationMatrix, TruthDiscovery, TruthEstimate
from repro.truthdiscovery.hubs_authorities import HubsAuthorities
from repro.truthdiscovery.mean import MeanBaseline
from repro.truthdiscovery.truthfinder import TruthFinder

__all__ = [
    "AverageLog",
    "HubsAuthorities",
    "MeanBaseline",
    "ObservationMatrix",
    "TruthDiscovery",
    "TruthEstimate",
    "TruthFinder",
]
