"""Shared data structures and interface for truth-discovery methods."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["ObservationMatrix", "TruthEstimate", "TruthDiscovery"]


@dataclass(frozen=True)
class ObservationMatrix:
    """A sparse user x task observation matrix.

    ``values[i, j]`` is user *i*'s observation of task *j*, meaningful only
    where ``mask[i, j]`` is True (the paper's ``w_ij = 1``).
    """

    values: np.ndarray
    mask: np.ndarray

    def __post_init__(self):
        values = np.asarray(self.values, dtype=float)
        mask = np.asarray(self.mask, dtype=bool)
        if values.shape != mask.shape or values.ndim != 2:
            raise ValueError("values and mask must be 2-D arrays of the same shape")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "mask", mask)

    @classmethod
    def from_triples(
        cls, triples: Iterable, n_users: int, n_tasks: int
    ) -> "ObservationMatrix":
        """Build from ``(user, task, value)`` triples."""
        values = np.zeros((n_users, n_tasks), dtype=float)
        mask = np.zeros((n_users, n_tasks), dtype=bool)
        for user, task, value in triples:
            values[user, task] = float(value)
            mask[user, task] = True
        return cls(values=values, mask=mask)

    @property
    def n_users(self) -> int:
        return self.values.shape[0]

    @property
    def n_tasks(self) -> int:
        return self.values.shape[1]

    @property
    def observation_count(self) -> int:
        return int(self.mask.sum())

    def observations_for_task(self, task: int) -> "tuple[np.ndarray, np.ndarray]":
        """``(user_indices, values)`` of the observations for ``task``."""
        users = np.flatnonzero(self.mask[:, task])
        return users, self.values[users, task]

    def tasks_of_user(self, user: int) -> np.ndarray:
        return np.flatnonzero(self.mask[user, :])

    def task_means(self) -> np.ndarray:
        """Unweighted per-task observation means (nan for unobserved tasks)."""
        counts = self.mask.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, (self.values * self.mask).sum(axis=0) / counts, np.nan)
        return means

    def task_spreads(self, floor: float = 1e-9) -> np.ndarray:
        """Per-task observation standard deviations, floored away from zero.

        Used as the agreement scale of the numeric baselines; tasks with one
        observation (or identical observations) get the floor so Gaussian
        kernels stay defined.
        """
        counts = self.mask.sum(axis=0)
        means = self.task_means()
        centred = np.where(self.mask, self.values - np.where(np.isnan(means), 0.0, means), 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            variance = np.where(counts > 0, (centred**2).sum(axis=0) / np.maximum(counts, 1), 0.0)
        spread = np.sqrt(variance)
        return np.maximum(spread, floor)

    def restricted_to_tasks(self, tasks: np.ndarray) -> "ObservationMatrix":
        """A copy containing only the given task columns."""
        tasks = np.asarray(tasks, dtype=int)
        return ObservationMatrix(values=self.values[:, tasks], mask=self.mask[:, tasks])


@dataclass(frozen=True)
class TruthEstimate:
    """Output of a truth-discovery method."""

    truths: np.ndarray
    reliabilities: np.ndarray
    iterations: int = 0
    converged: bool = True
    extras: dict = field(default_factory=dict)


class TruthDiscovery(abc.ABC):
    """Interface every truth-discovery method implements."""

    #: Human-readable name used in experiment reports.
    name: str = "truth-discovery"

    @abc.abstractmethod
    def estimate(self, observations: ObservationMatrix) -> TruthEstimate:
        """Estimate per-task truths (and per-user reliabilities)."""

    @staticmethod
    def _require_observations(observations: ObservationMatrix) -> None:
        if observations.observation_count == 0:
            raise ValueError("observation matrix is empty")
