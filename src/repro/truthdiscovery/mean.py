"""The paper's lower-bound baseline: truth = mean of the observations."""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery.base import ObservationMatrix, TruthDiscovery, TruthEstimate

__all__ = ["MeanBaseline"]


class MeanBaseline(TruthDiscovery):
    """Per-task unweighted mean; all users equally reliable."""

    name = "baseline-mean"

    def estimate(self, observations: ObservationMatrix) -> TruthEstimate:
        self._require_observations(observations)
        return TruthEstimate(
            truths=observations.task_means(),
            reliabilities=np.ones(observations.n_users, dtype=float),
            iterations=1,
            converged=True,
        )
