"""Dawid-Skene-style EM with per-user accuracy (the one-coin model).

The classic Dawid & Skene estimator learns a full per-user confusion matrix
over a shared label space.  Crowdsourcing tasks here have *per-task*
candidate sets (different questions have different answer options), so the
appropriate reduction is the standard "one-coin" variant: user *i* answers
correctly with probability ``a_i`` and otherwise picks uniformly among the
task's remaining candidates.  EM alternates:

- **E-step**: posterior over each task's true answer from the users'
  accuracies,
- **M-step**: each user's accuracy from the posterior mass it placed on its
  own answers.

This is the categorical analog of the paper's *reliability-based* baselines:
one scalar per user, no domain awareness.
"""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery.categorical.base import (
    MISSING,
    CategoricalEstimate,
    CategoricalObservations,
)

__all__ = ["DawidSkene", "posterior_for_task"]

#: Accuracies are kept inside (eps, 1 - eps) so likelihoods stay positive.
_ACCURACY_EPS = 1e-3


def posterior_for_task(
    users: np.ndarray,
    answers: np.ndarray,
    accuracies: np.ndarray,
    n_choices: int,
) -> np.ndarray:
    """Posterior over one task's candidates given user answers/accuracies.

    Uniform prior; computed in log space for numerical stability.
    """
    log_post = np.zeros(n_choices, dtype=float)
    for user, answer in zip(users, answers):
        accuracy = accuracies[user]
        wrong = (1.0 - accuracy) / (n_choices - 1)
        contribution = np.full(n_choices, np.log(wrong))
        contribution[answer] = np.log(accuracy)
        log_post += contribution
    log_post -= log_post.max()
    post = np.exp(log_post)
    return post / post.sum()


class DawidSkene:
    """One-coin Dawid-Skene EM."""

    name = "dawid-skene"

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-4, initial_accuracy: float = 0.7):
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if not 0.0 < initial_accuracy < 1.0:
            raise ValueError("initial_accuracy must lie in (0, 1)")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance)
        self._initial_accuracy = float(initial_accuracy)

    def estimate(self, observations: CategoricalObservations) -> CategoricalEstimate:
        if observations.answer_count == 0:
            raise ValueError("observations are empty")
        n_users, n_tasks = observations.n_users, observations.n_tasks
        accuracies = np.full(n_users, self._initial_accuracy, dtype=float)
        counts = (observations.answers != MISSING).sum(axis=1).astype(float)

        per_task = [observations.answers_for_task(j) for j in range(n_tasks)]
        posteriors: list = [None] * n_tasks
        converged = False
        iterations = 0
        for iterations in range(1, self._max_iterations + 1):
            # E-step.
            for task in range(n_tasks):
                users, answers = per_task[task]
                k = int(observations.n_choices[task])
                if users.size == 0:
                    posteriors[task] = np.full(k, 1.0 / k)
                else:
                    posteriors[task] = posterior_for_task(users, answers, accuracies, k)
            # M-step.
            correct_mass = np.zeros(n_users, dtype=float)
            for task in range(n_tasks):
                users, answers = per_task[task]
                if users.size:
                    correct_mass[users] += posteriors[task][answers]
            new_accuracies = np.where(counts > 0, correct_mass / np.maximum(counts, 1.0), self._initial_accuracy)
            new_accuracies = np.clip(new_accuracies, _ACCURACY_EPS, 1.0 - _ACCURACY_EPS)
            change = float(np.max(np.abs(new_accuracies - accuracies)))
            accuracies = new_accuracies
            if change < self._tolerance:
                converged = True
                break

        labels = np.array(
            [
                int(np.argmax(posteriors[task])) if per_task[task][0].size else MISSING
                for task in range(n_tasks)
            ],
            dtype=int,
        )
        return CategoricalEstimate(
            labels=labels,
            posteriors=tuple(posteriors),
            reliabilities=accuracies,
            iterations=iterations,
            converged=converged,
        )
