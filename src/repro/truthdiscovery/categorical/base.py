"""Data structures for categorical truth discovery."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["CategoricalObservations", "CategoricalEstimate", "MISSING"]

#: Sentinel for "user did not answer this task".
MISSING = -1


@dataclass(frozen=True)
class CategoricalObservations:
    """A sparse user x task matrix of categorical answers.

    ``answers[i, j]`` is user *i*'s chosen candidate index for task *j*
    (``MISSING`` where unanswered); ``n_choices[j]`` is task *j*'s candidate
    count (answers must satisfy ``0 <= answer < n_choices[j]``).
    """

    answers: np.ndarray
    n_choices: np.ndarray

    def __post_init__(self):
        answers = np.asarray(self.answers, dtype=int)
        n_choices = np.asarray(self.n_choices, dtype=int)
        if answers.ndim != 2:
            raise ValueError("answers must be a 2-D matrix")
        if n_choices.shape != (answers.shape[1],):
            raise ValueError("n_choices must have one entry per task")
        if np.any(n_choices < 2):
            raise ValueError("every task needs at least two candidate answers")
        valid = (answers == MISSING) | ((answers >= 0) & (answers < n_choices[None, :]))
        if not np.all(valid):
            raise ValueError("answers contain out-of-range candidate indices")
        object.__setattr__(self, "answers", answers)
        object.__setattr__(self, "n_choices", n_choices)

    @classmethod
    def from_triples(
        cls, triples: Iterable, n_users: int, n_tasks: int, n_choices
    ) -> "CategoricalObservations":
        """Build from ``(user, task, answer)`` triples."""
        answers = np.full((n_users, n_tasks), MISSING, dtype=int)
        for user, task, answer in triples:
            answers[user, task] = int(answer)
        n_choices = np.broadcast_to(np.asarray(n_choices, dtype=int), (n_tasks,)).copy()
        return cls(answers=answers, n_choices=n_choices)

    @property
    def n_users(self) -> int:
        return self.answers.shape[0]

    @property
    def n_tasks(self) -> int:
        return self.answers.shape[1]

    @property
    def mask(self) -> np.ndarray:
        return self.answers != MISSING

    @property
    def answer_count(self) -> int:
        return int(np.sum(self.answers != MISSING))

    def answers_for_task(self, task: int) -> "tuple[np.ndarray, np.ndarray]":
        """``(user_indices, answers)`` for one task."""
        users = np.flatnonzero(self.answers[:, task] != MISSING)
        return users, self.answers[users, task]

    def vote_counts(self, task: int) -> np.ndarray:
        """Unweighted candidate vote counts for one task."""
        _, answers = self.answers_for_task(task)
        return np.bincount(answers, minlength=int(self.n_choices[task]))


@dataclass(frozen=True)
class CategoricalEstimate:
    """Output of a categorical truth-discovery method."""

    labels: np.ndarray
    #: ``posteriors[j]`` is a length-``n_choices[j]`` probability vector.
    posteriors: tuple
    #: Scalar per-user reliability/accuracy summary (model-specific).
    reliabilities: np.ndarray
    iterations: int = 0
    converged: bool = True
    extras: dict = field(default_factory=dict)

    def accuracy_against(self, true_labels: np.ndarray) -> float:
        """Fraction of tasks whose label matches ``true_labels``.

        Tasks with no estimate (label ``MISSING``) count as wrong — a system
        that answers nothing should not score well.
        """
        true_labels = np.asarray(true_labels, dtype=int)
        if true_labels.shape != self.labels.shape:
            raise ValueError("true_labels must match the label vector shape")
        return float(np.mean(self.labels == true_labels))
