"""Expertise-aware categorical truth discovery: the ETA2 analog for labels.

Where :class:`~repro.truthdiscovery.categorical.dawid_skene.DawidSkene`
learns one accuracy per user, this model learns one accuracy per
(user, expertise domain) — exactly the paper's thesis transplanted to
categorical answers: a user may validate sports slots perfectly and guess on
finance slots.  The EM is the one-coin model with domain-indexed parameters:

- **E-step**: task posterior from the answering users' accuracies *in the
  task's domain*,
- **M-step**: ``a_i^k`` from the posterior mass user *i* earned on domain-k
  tasks, with a small symmetric prior (``PRIOR_STRENGTH`` pseudo-answers at
  the uninformed accuracy) playing the same anti-runaway role as the numeric
  model's expertise prior.

The learned per-domain accuracies are directly usable as the ``p_ij`` of
the max-quality allocation objective.
"""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery.categorical.base import (
    MISSING,
    CategoricalEstimate,
    CategoricalObservations,
)
from repro.truthdiscovery.categorical.dawid_skene import _ACCURACY_EPS, posterior_for_task

__all__ = ["ExpertiseVoting"]

#: Pseudo-answers shrinking low-data accuracies toward the uninformed value.
PRIOR_STRENGTH = 1.0


class ExpertiseVoting:
    """Per-(user, domain) one-coin EM."""

    name = "expertise-voting"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        initial_accuracy: float = 0.7,
        prior_strength: float = PRIOR_STRENGTH,
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if not 0.0 < initial_accuracy < 1.0:
            raise ValueError("initial_accuracy must lie in (0, 1)")
        if prior_strength < 0:
            raise ValueError("prior_strength must be non-negative")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance)
        self._initial_accuracy = float(initial_accuracy)
        self._prior = float(prior_strength)

    def estimate(
        self, observations: CategoricalObservations, task_domains
    ) -> CategoricalEstimate:
        """Run the EM; ``task_domains`` labels each task's expertise domain.

        The returned estimate's ``extras["domain_accuracies"]`` maps each
        domain id to the per-user accuracy column, and ``reliabilities``
        carries each user's mean accuracy across domains (a scalar summary).
        """
        if observations.answer_count == 0:
            raise ValueError("observations are empty")
        task_domains = np.asarray(task_domains)
        if task_domains.shape != (observations.n_tasks,):
            raise ValueError("task_domains must have one label per task")

        n_users, n_tasks = observations.n_users, observations.n_tasks
        domain_ids = sorted(set(task_domains.tolist()))
        column_of = {d: k for k, d in enumerate(domain_ids)}
        domain_columns = np.array([column_of[d] for d in task_domains.tolist()], dtype=int)
        n_domains = len(domain_ids)

        accuracies = np.full((n_users, n_domains), self._initial_accuracy, dtype=float)
        per_task = [observations.answers_for_task(j) for j in range(n_tasks)]
        answer_counts = np.zeros((n_users, n_domains), dtype=float)
        for task in range(n_tasks):
            users, _ = per_task[task]
            answer_counts[users, domain_columns[task]] += 1.0

        posteriors: list = [None] * n_tasks
        converged = False
        iterations = 0
        for iterations in range(1, self._max_iterations + 1):
            # E-step (per task, using the task's domain column).
            for task in range(n_tasks):
                users, answers = per_task[task]
                k = int(observations.n_choices[task])
                if users.size == 0:
                    posteriors[task] = np.full(k, 1.0 / k)
                else:
                    posteriors[task] = posterior_for_task(
                        users, answers, accuracies[:, domain_columns[task]], k
                    )
            # M-step with the shrinkage prior.
            correct_mass = np.zeros((n_users, n_domains), dtype=float)
            for task in range(n_tasks):
                users, answers = per_task[task]
                if users.size:
                    correct_mass[users, domain_columns[task]] += posteriors[task][answers]
            new_accuracies = (correct_mass + self._prior * self._initial_accuracy) / (
                answer_counts + self._prior
            )
            new_accuracies = np.clip(new_accuracies, _ACCURACY_EPS, 1.0 - _ACCURACY_EPS)
            change = float(np.max(np.abs(new_accuracies - accuracies)))
            accuracies = new_accuracies
            if change < self._tolerance:
                converged = True
                break

        labels = np.array(
            [
                int(np.argmax(posteriors[task])) if per_task[task][0].size else MISSING
                for task in range(n_tasks)
            ],
            dtype=int,
        )
        domain_accuracies = {
            domain_id: accuracies[:, column_of[domain_id]].copy() for domain_id in domain_ids
        }
        return CategoricalEstimate(
            labels=labels,
            posteriors=tuple(posteriors),
            reliabilities=accuracies.mean(axis=1),
            iterations=iterations,
            converged=converged,
            extras={"domain_accuracies": domain_accuracies},
        )
