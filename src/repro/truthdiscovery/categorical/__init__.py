"""Categorical truth discovery (extension beyond the paper's numeric model).

The paper evaluates on the TAC-KBP Slot Filling Validation data by coercing
its answers to numbers, but slot-filling answers are natively *categorical*:
each question has a small set of candidate answers and each system picks one.
This subpackage implements the categorical counterpart of the paper's
machinery so the same expertise-aware ideas run on discrete answers:

- :class:`~repro.truthdiscovery.categorical.base.CategoricalObservations` —
  the sparse user x task answer matrix (per-task candidate counts),
- :class:`~repro.truthdiscovery.categorical.majority.MajorityVote` — the
  baseline,
- :class:`~repro.truthdiscovery.categorical.dawid_skene.DawidSkene` — the
  classic EM over per-user confusion structure (single global accuracy per
  user here is the reliability-style model),
- :class:`~repro.truthdiscovery.categorical.expertise_voting.ExpertiseVoting`
  — the categorical ETA2 analog: per-user **per-domain** accuracy under a
  symmetric noise model, estimated jointly with the answer posteriors by EM.

Per-domain accuracies double as the allocation input: with accuracy ``a`` as
``p_ij`` the max-quality objective (Eq. 12) applies verbatim.
"""

from repro.truthdiscovery.categorical.base import (
    CategoricalEstimate,
    CategoricalObservations,
)
from repro.truthdiscovery.categorical.dawid_skene import DawidSkene
from repro.truthdiscovery.categorical.expertise_voting import ExpertiseVoting
from repro.truthdiscovery.categorical.majority import MajorityVote

__all__ = [
    "CategoricalEstimate",
    "CategoricalObservations",
    "DawidSkene",
    "ExpertiseVoting",
    "MajorityVote",
]
