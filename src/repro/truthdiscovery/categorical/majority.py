"""Majority voting: the categorical lower-bound baseline."""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery.categorical.base import (
    MISSING,
    CategoricalEstimate,
    CategoricalObservations,
)

__all__ = ["MajorityVote"]


class MajorityVote:
    """Each task's answer is the most-voted candidate (ties -> lowest index).

    The categorical analog of the paper's "Baseline" mean estimator.
    """

    name = "majority-vote"

    def estimate(self, observations: CategoricalObservations) -> CategoricalEstimate:
        if observations.answer_count == 0:
            raise ValueError("observations are empty")
        labels = np.full(observations.n_tasks, MISSING, dtype=int)
        posteriors = []
        for task in range(observations.n_tasks):
            counts = observations.vote_counts(task)
            total = counts.sum()
            if total == 0:
                posteriors.append(np.full(counts.shape, 1.0 / counts.size))
                continue
            labels[task] = int(np.argmax(counts))
            posteriors.append(counts / total)
        return CategoricalEstimate(
            labels=labels,
            posteriors=tuple(posteriors),
            reliabilities=np.ones(observations.n_users, dtype=float),
            iterations=1,
            converged=True,
        )
