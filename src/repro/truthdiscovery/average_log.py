"""Average-Log truth discovery (Pasternack & Roth, per the paper).

"The reliability of each source is calculated by multiplying the average
credibility of its provided data items and the logarithm of the number of its
provided data items."  The log factor rewards prolific sources without
letting sheer volume dominate (the flaw Average-Log fixes in plain Sums).
Item credibility in the numeric adaptation is kernel closeness to the current
truth estimate; truths are re-estimated as reliability-weighted means.
"""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery._numeric import closeness_to_truth, relative_change, weighted_truths
from repro.truthdiscovery.base import ObservationMatrix, TruthDiscovery, TruthEstimate

__all__ = ["AverageLog"]


class AverageLog(TruthDiscovery):
    """Iterative Average-Log reliability scoring."""

    name = "average-log"

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-4):
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance)

    def estimate(self, observations: ObservationMatrix) -> TruthEstimate:
        self._require_observations(observations)
        spreads = observations.task_spreads()
        counts = observations.mask.sum(axis=1).astype(float)
        log_factor = np.log1p(counts)  # log(1 + n_i): defined for n_i = 0
        truths = observations.task_means()
        reliability = np.ones(observations.n_users, dtype=float)
        converged = False
        iterations = 0
        for iterations in range(1, self._max_iterations + 1):
            credibility = closeness_to_truth(observations, truths, spreads)
            with np.errstate(invalid="ignore", divide="ignore"):
                average_credibility = np.where(
                    counts > 0, credibility.sum(axis=1) / np.maximum(counts, 1.0), 0.0
                )
            new_reliability = average_credibility * log_factor
            peak = new_reliability.max()
            if peak > 0:
                new_reliability = new_reliability / peak
            truths = weighted_truths(
                observations, np.repeat(new_reliability[:, None], observations.n_tasks, axis=1), truths
            )
            change = relative_change(new_reliability, reliability)
            reliability = new_reliability
            if change < self._tolerance:
                converged = True
                break
        return TruthEstimate(
            truths=truths,
            reliabilities=reliability,
            iterations=iterations,
            converged=converged,
        )
