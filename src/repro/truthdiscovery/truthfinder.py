"""TruthFinder (Yin, Han & Yu, per the paper).

"The credibility of an observed data item is the probability that it is
accurate and the reliability of the source is the probability that it
provides accurate data."  TruthFinder works in log-odds space: each source
contributes trustworthiness score ``tau_i = -ln(1 - t_i)`` to the items it
(softly) supports, item confidence is a damped logistic of the accumulated
score, and a source's trustworthiness is the average confidence of its items.
The numeric adaptation uses the shared Gaussian agreement kernel as the
implication weight between co-observations of a task.
"""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery._numeric import pairwise_support, relative_change, weighted_truths
from repro.truthdiscovery.base import ObservationMatrix, TruthDiscovery, TruthEstimate

__all__ = ["TruthFinder"]


class TruthFinder(TruthDiscovery):
    """Iterative TruthFinder confidence propagation.

    Initial trustworthiness follows the original paper (0.9), and a cap keeps
    trust strictly below 1 so that ``-ln(1 - t)`` stays finite.  The original
    dampening factor ``gamma = 0.3`` was tuned for implication *sums*; with
    the normalised (mean) support of the numeric adaptation, ``gamma = 1.0``
    restores comparable dynamics and is the default here.
    """

    name = "truthfinder"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        initial_trust: float = 0.9,
        dampening: float = 1.0,
        trust_cap: float = 0.999999,
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if not 0.0 < initial_trust < 1.0:
            raise ValueError("initial_trust must lie in (0, 1)")
        if dampening <= 0:
            raise ValueError("dampening must be positive")
        if not 0.0 < trust_cap < 1.0:
            raise ValueError("trust_cap must lie in (0, 1)")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance)
        self._initial_trust = float(initial_trust)
        self._dampening = float(dampening)
        self._trust_cap = float(trust_cap)

    def estimate(self, observations: ObservationMatrix) -> TruthEstimate:
        self._require_observations(observations)
        spreads = observations.task_spreads()
        trust = np.full(observations.n_users, self._initial_trust, dtype=float)
        counts = observations.mask.sum(axis=1).astype(float)
        confidence = np.where(observations.mask, self._initial_trust, 0.0)
        converged = False
        iterations = 0
        for iterations in range(1, self._max_iterations + 1):
            tau = -np.log1p(-np.minimum(trust, self._trust_cap))
            score = pairwise_support(observations, tau, spreads, normalize=True)
            confidence = np.where(
                observations.mask,
                1.0 / (1.0 + np.exp(-self._dampening * score)),
                0.0,
            )
            with np.errstate(invalid="ignore", divide="ignore"):
                new_trust = np.where(
                    counts > 0, confidence.sum(axis=1) / np.maximum(counts, 1.0), 0.0
                )
            new_trust = np.minimum(new_trust, self._trust_cap)
            change = relative_change(new_trust, trust)
            trust = new_trust
            if change < self._tolerance:
                converged = True
                break
        truths = weighted_truths(observations, confidence)
        return TruthEstimate(
            truths=truths,
            reliabilities=trust,
            iterations=iterations,
            converged=converged,
        )
