"""Numeric-adaptation helpers shared by the categorical baselines.

The published baselines score *claims*; for numeric crowdsourcing data the
standard adaptation replaces claim identity with a soft agreement kernel:
two observations of task *j* support each other with weight
``exp(-0.5 * ((x - y) / s_j)^2)`` where ``s_j`` is the task's observation
spread.  Closeness of an observation to the current truth estimate uses the
same kernel.
"""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery.base import ObservationMatrix

__all__ = [
    "closeness_to_truth",
    "pairwise_support",
    "weighted_truths",
    "relative_change",
]


def closeness_to_truth(
    observations: ObservationMatrix, truths: np.ndarray, spreads: np.ndarray
) -> np.ndarray:
    """Kernel closeness ``c_ij`` of every observation to the current truths.

    Entries where ``mask`` is False are zero.
    """
    z = (observations.values - truths[None, :]) / spreads[None, :]
    closeness = np.exp(-0.5 * z * z)
    return np.where(observations.mask, closeness, 0.0)


def pairwise_support(
    observations: ObservationMatrix,
    source_scores: np.ndarray,
    spreads: np.ndarray,
    normalize: bool = False,
) -> np.ndarray:
    """Score-weighted support each observation receives from co-observers.

    ``support[i, j] = sum_{i'} score_{i'} * k((x_ij - x_i'j) / s_j)`` over all
    users *i'* observing task *j* (including *i* itself, whose kernel value
    is 1) — the credibility propagation step of Hubs & Authorities and
    TruthFinder.

    With ``normalize=True`` the sum becomes a mean over the task's observers.
    TruthFinder uses this: its dampened logistic was designed for implication
    sums of bounded size, and raw sums over many co-observers would saturate
    every confidence at 1, erasing the reliability signal.
    """
    values, mask = observations.values, observations.mask
    support = np.zeros_like(values)
    for task in range(observations.n_tasks):
        users = np.flatnonzero(mask[:, task])
        if users.size == 0:
            continue
        x = values[users, task]
        z = (x[:, None] - x[None, :]) / spreads[task]
        kernel = np.exp(-0.5 * z * z)
        task_support = kernel @ source_scores[users]
        if normalize:
            task_support = task_support / users.size
        support[users, task] = task_support
    return support


def weighted_truths(
    observations: ObservationMatrix, weights: np.ndarray, fallback: "np.ndarray | None" = None
) -> np.ndarray:
    """Per-task weighted means with per-observation ``weights``.

    Tasks whose total weight is zero fall back to the unweighted mean (or the
    provided ``fallback`` estimates), so one fully distrusted task does not
    produce NaNs that then poison every later iteration.
    """
    masked = np.where(observations.mask, weights, 0.0)
    totals = masked.sum(axis=0)
    sums = (masked * observations.values).sum(axis=0)
    if fallback is None:
        fallback = observations.task_means()
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, sums / np.where(totals > 0, totals, 1.0), fallback)


def relative_change(new: np.ndarray, old: np.ndarray) -> float:
    """Largest relative change between two vectors (absolute near zero)."""
    denom = np.maximum(np.abs(old), 1e-12)
    return float(np.max(np.abs(new - old) / denom))
