"""Hubs and Authorities truth discovery (Kleinberg-style, per the paper).

"The reliability of a source is the sum of the credibility of the data items
it provides, and the credibility of a data item is the sum of the reliability
of sources that provide the data."  In the numeric adaptation, "sources that
provide the data" becomes kernel-weighted support from co-observers of the
same task (see :mod:`repro.truthdiscovery._numeric`).  Scores are max-
normalised every round, the usual HITS power-iteration stabilisation.
"""

from __future__ import annotations

import numpy as np

from repro.truthdiscovery._numeric import pairwise_support, relative_change, weighted_truths
from repro.truthdiscovery.base import ObservationMatrix, TruthDiscovery, TruthEstimate

__all__ = ["HubsAuthorities"]


class HubsAuthorities(TruthDiscovery):
    """Iterative hubs/authorities scoring over users and data items."""

    name = "hubs-authorities"

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-4):
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance)

    def estimate(self, observations: ObservationMatrix) -> TruthEstimate:
        self._require_observations(observations)
        spreads = observations.task_spreads()
        reliability = np.ones(observations.n_users, dtype=float)
        converged = False
        iterations = 0
        credibility = np.where(observations.mask, 1.0, 0.0)
        for iterations in range(1, self._max_iterations + 1):
            # Authority step: item credibility from reliability of supporters.
            credibility = pairwise_support(observations, reliability, spreads)
            peak = credibility.max()
            if peak > 0:
                credibility = credibility / peak
            # Hub step: user reliability from the credibility of their items.
            new_reliability = (credibility * observations.mask).sum(axis=1)
            peak = new_reliability.max()
            if peak > 0:
                new_reliability = new_reliability / peak
            change = relative_change(new_reliability, reliability)
            reliability = new_reliability
            if change < self._tolerance:
                converged = True
                break
        # The numeric truth estimate weights observations by *source*
        # reliability (the hub score).  Weighting by per-item credibility
        # would instead implement a within-task robust mode estimator —
        # stronger than the published method and unfair as a baseline.
        weights = np.repeat(reliability[:, None], observations.n_tasks, axis=1)
        truths = weighted_truths(observations, weights)
        return TruthEstimate(
            truths=truths,
            reliabilities=reliability,
            iterations=iterations,
            converged=converged,
        )
