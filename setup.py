"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so the
modern PEP 517 editable-install path is unavailable; this classic ``setup.py``
lets ``pip install -e . --no-build-isolation`` (and plain ``pip install -e .``
on older pips) fall back to the legacy develop install.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ETA2: Expertise-Aware Truth Analysis and Task Allocation in Mobile "
        "Crowdsourcing (ICDCS 2017 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
