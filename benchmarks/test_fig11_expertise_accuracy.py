"""Fig. 11: accuracy of expertise estimation on the synthetic dataset."""

import numpy as np

from repro.experiments import fig11_expertise_accuracy

from conftest import run_once


def test_fig11_expertise_accuracy(benchmark, quick_config):
    result = run_once(
        benchmark,
        fig11_expertise_accuracy,
        quick_config,
        taus=(6.0, 12.0, 18.0),
    )
    print()
    print(result.render())

    errors = np.asarray(result.expertise_errors)
    assert np.all(np.isfinite(errors))
    # More capability -> more observations per (user, domain) -> better
    # expertise estimates (the paper's Fig. 11 shows a steady decline).
    assert errors[-1] < errors[0]
    # Synthetic expertise lives in [0, 3]; a mean absolute error near or
    # above 1 would mean the estimates carry no signal.
    assert errors[-1] < 0.8
