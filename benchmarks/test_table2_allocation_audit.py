"""Table 2: users per task vs the average expertise of those users."""

import numpy as np

from repro.experiments import table2_allocation_audit

from conftest import run_once


def test_table2_allocation_audit(benchmark, quick_config):
    result = run_once(benchmark, table2_allocation_audit, quick_config)
    print()
    print(result.render())

    fractions = np.asarray(result.task_fractions)
    assert abs(float(np.nansum(fractions)) - 1.0) < 1e-6

    # The paper's observation: tasks served by fewer users got users with
    # higher expertise (high-expertise users suffice; tasks without an
    # identifiable expert are spread over more, weaker users).
    expertise = [e for e in result.mean_expertise if np.isfinite(e)]
    assert len(expertise) >= 2
    assert expertise[0] > expertise[-1]
