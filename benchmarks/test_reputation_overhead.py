"""Reputation + guard overhead: protection must be near-free when idle.

The issue's acceptance bar: enabling reputation tracking and invariant
guards must cost <5% wall clock on an attack-free closed-loop run.  Both
subsystems are pure vectorised numpy over data the loop already computes
(one ``record_day`` fold plus boundary predicates per day), so against the
iterative MLE they should be far below that bar.

The comparison seed is chosen so the clean protected run quarantines
nobody — then both sides perform bitwise-identical allocation and truth
analysis and the measured ratio isolates the tracker/guard cost.  (On a
seed with a spurious quarantine the workloads diverge: the protected run
allocates over fewer workers, which can be *faster*, drowning the signal.)

``REPRO_BENCH_QUICK=1`` shrinks the world for CI smoke runs.
"""

import os
import time

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_dataset
from repro.simulation.approaches import ETA2Approach
from repro.simulation.engine import SimulationConfig, run_simulation

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

N_USERS = 30 if QUICK else 50
N_TASKS = 120 if QUICK else 300
N_DAYS = 3 if QUICK else 5
#: A seed whose clean protected run quarantines no one (verified; the
#: determinism tests keep this stable), so both sides do identical work.
SIM_SEED = 2018
ROUNDS = 5


def _run(protect):
    dataset = synthetic_dataset(n_tasks=N_TASKS, n_users=N_USERS, seed=123)
    approach = ETA2Approach(reputation=protect, guards="warn" if protect else None)
    config = SimulationConfig(n_days=N_DAYS, seed=SIM_SEED)
    return run_simulation(dataset, approach, config)


def test_reputation_and_guards_overhead_under_5_percent():
    # Warm-up pass so neither side pays first-call costs.
    _run(False)
    result = _run(True)
    assert result.ever_quarantined == (), (
        "benchmark seed no longer quarantine-free; pick another seed so the "
        "protected and unprotected runs do identical allocation work"
    )

    ratios = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run(False)
        plain = time.perf_counter() - start
        start = time.perf_counter()
        _run(True)
        protected = time.perf_counter() - start
        ratios.append(protected / plain)
    overhead = min(ratios) - 1.0
    assert overhead < 0.05, (
        f"reputation+guards overhead {overhead:.2%} exceeds the 5% budget "
        f"(per-round protected/plain ratios: {[f'{r:.3f}' for r in ratios]})"
    )


def test_protection_identical_results_without_quarantines():
    """With nobody quarantined, protection must not perturb the estimates."""
    plain = _run(False)
    protected = _run(True)
    for day_a, day_b in zip(plain.days, protected.days):
        assert np.array_equal(day_a.truths, day_b.truths)


def test_closed_loop_plain(benchmark):
    benchmark(lambda: _run(False))


def test_closed_loop_protected(benchmark):
    result = benchmark(lambda: _run(True))
    assert result.days[-1].estimation_error < 1.0


def test_record_day_microbenchmark(benchmark):
    """One day's reputation fold at realistic density (the per-day cost)."""
    from repro.reliability.reputation import ReputationTracker

    rng = np.random.default_rng(0)
    n_users, n_tasks = N_USERS, N_TASKS
    tracker = ReputationTracker(n_users)
    mask = rng.random((n_users, n_tasks)) < 0.2
    values = rng.normal(10.0, 2.0, (n_users, n_tasks))
    truths = rng.normal(10.0, 2.0, n_tasks)
    sigmas = rng.uniform(0.5, 3.0, n_tasks)
    expertise = rng.uniform(0.3, 3.0, (n_users, n_tasks))
    benchmark(lambda: tracker.record_day(mask, values, truths, sigmas, expertise))
