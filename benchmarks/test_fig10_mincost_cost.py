"""Fig. 10: allocation cost of ETA2 vs ETA2-mc across tau."""

import numpy as np
import pytest

from repro.experiments import fig9_fig10_mincost_comparison

from conftest import run_once


@pytest.mark.parametrize("dataset_name", ["synthetic", "sfv"])
def test_fig10_mincost_cost(benchmark, quick_config, dataset_name):
    result = run_once(
        benchmark,
        fig9_fig10_mincost_comparison,
        dataset_name,
        quick_config,
        taus=(10.0, 14.0),
        round_budgets=(40.0, 80.0),
    )
    print()
    print(result.render_costs())

    eta2_cost = np.asarray(result.cost_series["ETA2"])
    # The headline of Fig. 10: ETA2-mc recruits far fewer users.  The gap
    # depends on slack: with many users (synthetic) the saving is large;
    # with 18 heavily specialised users (SFV) the quality requirement
    # forces recruiting close to capacity before every confidence interval
    # narrows enough, so mc approaches (but never exceeds) ETA2's spend —
    # the paper's Fig. 10(b) shows the same compression.
    saving = 0.75 if dataset_name == "synthetic" else 1.0
    for name, series in result.cost_series.items():
        if name == "ETA2":
            continue
        mc_cost = np.asarray(series)
        assert np.all(mc_cost <= saving * eta2_cost), (name, mc_cost, eta2_cost)

    # ETA2 (capacity-filling) cost grows with tau; mc cost should not.
    assert eta2_cost[-1] > eta2_cost[0]
