"""Fig. 5: estimation error over days — ETA2 vs the four baselines."""

import numpy as np
import pytest

from repro.experiments import fig5_error_over_days

from conftest import run_once


@pytest.mark.parametrize("dataset_name", ["survey", "sfv", "synthetic"])
def test_fig5_error_over_days(benchmark, quick_config, dataset_name):
    result = run_once(benchmark, fig5_error_over_days, dataset_name, quick_config)
    print()
    print(result.render())

    eta2 = np.asarray(result.series["ETA2"])
    # ETA2's error drops as expertise is learned (day 1 is the warm-up).
    assert eta2[-1] < eta2[0]

    # After the warm-up, ETA2 beats every baseline on average (the paper
    # reports 15-20% / 5-15% / ~20% margins on survey / SFV / synthetic).
    eta2_after = float(np.mean(eta2[1:]))
    for name, series in result.series.items():
        if name == "ETA2":
            continue
        baseline_after = float(np.mean(np.asarray(series)[1:]))
        assert eta2_after < baseline_after, (name, eta2_after, baseline_after)

    # The mean baseline never learns: it shows no comparable improvement.
    mean_series = np.asarray(result.series["baseline-mean"])
    assert mean_series[-1] > eta2[-1]
