"""Supervised-execution overhead: the fault-free path must be near-free.

The acceptance bar from the supervised-sweep issue: running a sweep through
:class:`~repro.reliability.supervisor.SupervisedExecutor` with no faults,
no journal, and no timeouts must cost <5% over bare serial ``run_jobs``.
Per job the supervisor adds one SHA-256 fingerprint, attempt bookkeeping,
and a couple of branches — nothing against a real ``run_simulation`` cell.

Same methodology as ``test_reliability_overhead.py``: paired back-to-back
rounds cancel drift, and the min ratio across rounds is the cleanest
observation of the true overhead.
"""

import time

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.perf.sweep import ApproachSpec, replication_jobs, run_jobs
from repro.reliability.supervisor import SupervisedExecutor, SupervisorConfig

ROUNDS = 5


def _jobs():
    config = ExperimentConfig(
        replications=3, n_days=2, seed=31, synthetic_tasks=40, synthetic_users=12
    )
    return replication_jobs("synthetic", ApproachSpec.eta2(gamma=0.3, alpha=0.5), config)


def _paired_round_ratios(jobs):
    ratios = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_jobs(jobs)
        bare = time.perf_counter() - start
        start = time.perf_counter()
        run_jobs(jobs, supervisor=SupervisorConfig())
        supervised = time.perf_counter() - start
        ratios.append(supervised / bare)
    return ratios


def test_fault_free_supervised_overhead_under_5_percent():
    jobs = _jobs()
    # Warm-up pass so neither side pays first-call costs (imports, caches).
    run_jobs(jobs)
    run_jobs(jobs, supervisor=SupervisorConfig())

    ratios = _paired_round_ratios(jobs)
    overhead = min(ratios) - 1.0
    assert overhead < 0.05, (
        f"fault-free supervised overhead {overhead:.2%} exceeds the 5% budget "
        f"(per-round supervised/bare ratios: {[f'{r:.3f}' for r in ratios]})"
    )


def test_supervised_results_identical_on_fault_free_path():
    jobs = _jobs()
    bare = run_jobs(jobs)
    supervised = run_jobs(jobs, supervisor=SupervisorConfig())
    for a, b in zip(bare, supervised):
        np.testing.assert_array_equal(a.errors_by_day(), b.errors_by_day())
        assert a.total_cost == b.total_cost


def test_sweep_bare_serial(benchmark):
    jobs = _jobs()
    benchmark(lambda: run_jobs(jobs))


def test_sweep_supervised_serial(benchmark):
    jobs = _jobs()
    executor = SupervisedExecutor(n_jobs=None)
    benchmark(lambda: executor.run(jobs))
