"""Reliability-layer overhead: the fault-free fast path must be near-free.

The issue's acceptance bar: wrapping ``observe()`` in a
:class:`ResilientObserver` must cost <5% on the fault-free path.  The
wrapper's happy path is two clock reads plus bookkeeping increments, so
against any realistic observe callback (network, sensor, or here: a numpy
model of one) the overhead should be far below that bar.

``test_fault_free_overhead_under_5_percent`` asserts the bar directly with
min-of-rounds timing (min is robust to scheduler noise); the ``benchmark``
entries record absolute numbers alongside the other microbenchmarks.
"""

import time

import numpy as np
import pytest

from repro.reliability.observer import CircuitBreaker, ResilientObserver, RetryPolicy

N_PAIRS = 1000
ROUNDS = 9
CALLS_PER_ROUND = 40


def _make_observe(seed=0):
    """A realistic observe callback: per-pair lookups into a noise model.

    Deliberately *cheaper* than the repo's real callbacks (the simulation
    world observes with a per-pair Python loop), so the measured relative
    overhead here is an upper bound on what the closed loop actually pays.
    """
    rng = np.random.default_rng(seed)
    truths = rng.uniform(0.0, 20.0, 600)
    expertise = rng.uniform(0.3, 3.0, (80, 600))
    noise = rng.standard_normal(20_000)
    state = {"cursor": 0}

    def observe(pairs):
        users = np.fromiter((p[0] for p in pairs), dtype=int, count=len(pairs))
        tasks = np.fromiter((p[1] for p in pairs), dtype=int, count=len(pairs))
        start = state["cursor"]
        state["cursor"] = (start + len(pairs)) % (noise.size - len(pairs))
        draw = noise[start : start + len(pairs)]
        return truths[tasks] + draw / expertise[users, tasks]

    return observe


def _pairs(seed=1):
    rng = np.random.default_rng(seed)
    return [(int(rng.integers(80)), int(rng.integers(600))) for _ in range(N_PAIRS)]


def _wrapped(observe):
    return ResilientObserver(
        observe,
        retry=RetryPolicy(max_attempts=3, base_delay=0.05),
        breaker=CircuitBreaker(failure_threshold=5),
        call_timeout=5.0,
    )


def _paired_round_ratios(raw_fn, wrapped_fn, pairs):
    """Per-round wrapped/raw time ratios, with the two timed back to back.

    Pairing adjacent measurements cancels slow drift (frequency scaling,
    background load), and the *min* ratio across rounds is the cleanest
    observation of the true relative overhead — one round where both sides
    dodge the scheduler is enough.
    """
    ratios = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(CALLS_PER_ROUND):
            raw_fn(pairs)
        raw = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(CALLS_PER_ROUND):
            wrapped_fn(pairs)
        wrapped = time.perf_counter() - start
        ratios.append(wrapped / raw)
    return ratios


def test_fault_free_overhead_under_5_percent():
    observe = _make_observe()
    pairs = _pairs()
    wrapped = _wrapped(observe)
    # Warm-up pass so neither side pays first-call costs.
    observe(pairs)
    wrapped(pairs)

    ratios = _paired_round_ratios(observe, wrapped, pairs)
    overhead = min(ratios) - 1.0
    assert overhead < 0.05, (
        f"fault-free ResilientObserver overhead {overhead:.2%} exceeds the 5% budget "
        f"(per-round wrapped/raw ratios: {[f'{r:.3f}' for r in ratios]})"
    )
    assert wrapped.report.fault_count == 0  # the fast path really was fault-free


def test_wrapped_results_identical_on_fault_free_path():
    observe = _make_observe(seed=3)
    pairs = _pairs(seed=4)
    expected = np.asarray(_make_observe(seed=3)(pairs), dtype=float)
    assert np.allclose(_wrapped(observe)(pairs), expected)


def test_observe_raw(benchmark):
    observe = _make_observe()
    pairs = _pairs()
    benchmark(lambda: observe(pairs))


def test_observe_resilient(benchmark):
    wrapped = _wrapped(_make_observe())
    pairs = _pairs()
    values = benchmark(lambda: wrapped(pairs))
    assert np.all(np.isfinite(values))


def test_checkpoint_save(benchmark, tmp_path):
    """Checkpoint cost per step (atomic write + checksum + rotation)."""
    from repro.core.pipeline import ETA2System, IncomingTask
    from repro.reliability.checkpoint import CheckpointManager

    rng = np.random.default_rng(5)
    system = ETA2System(n_users=40, capacities=np.full(40, 10.0), seed=5)
    tasks = [
        IncomingTask(processing_time=1.0, domain=int(rng.integers(4))) for _ in range(60)
    ]
    system.warmup(tasks, lambda pairs: [10.0 + rng.standard_normal() for _ in pairs])
    manager = CheckpointManager(tmp_path, keep=3)
    counter = {"step": 0}

    def save():
        counter["step"] += 1
        manager.save(system, counter["step"])

    benchmark(save)
