"""Extension benchmark: the paper's thesis on categorical answers.

The real SFV data is categorical (a slot value is right or wrong); the
paper coerces it to numbers.  This benchmark runs the day loop natively on
discrete answers and shows the same headline: modelling expertise per
domain (expertise-voting) beats per-user reliability (Dawid-Skene) beats
no modelling at all (majority vote).
"""

import numpy as np

from repro.experiments.categorical import categorical_comparison


def test_categorical_extension(benchmark):
    result = benchmark.pedantic(
        lambda: categorical_comparison(replications=3, n_tasks=300, seed=2017),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    ev = np.asarray(result.accuracy_series["expertise-voting"])
    ds = np.asarray(result.accuracy_series["dawid-skene"])
    mv = np.asarray(result.accuracy_series["majority-vote"])

    # Post-warm-up: the domain-aware model dominates, and learns over days.
    assert float(np.mean(ev[1:])) > float(np.mean(ds[1:]))
    assert float(np.mean(ev[1:])) > float(np.mean(mv[1:]))
    assert ev[-1] > ev[0]
    # And it ends up identifying labels with high accuracy in absolute terms.
    assert ev[-1] > 0.85
