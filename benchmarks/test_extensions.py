"""Extension benchmarks: features beyond the paper's evaluation.

1. **Drift x decay** — the paper motivates the decay factor alpha (Eqs. 7-8)
   by "undermining the influence of historical tasks" but never tests a
   non-stationary world.  We drift the hidden expertise with a per-day
   random walk and measure how alpha handles it: with drift, full memory
   (alpha = 1) tracks worse than decayed memory.
2. **Exploration** — the Algorithm 1 greedy is purely exploitative; an
   epsilon-greedy exploration budget improves specialist identification on
   the strongly specialised SFV dataset without giving up estimation error.
"""

import numpy as np

from repro.datasets import sfv_dataset, synthetic_dataset
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.approaches import ETA2Approach
from repro.simulation.metrics import match_domains


def test_extension_drift_vs_decay(benchmark):
    def run():
        results = {}
        for alpha in (0.1, 0.5, 1.0):
            errors = []
            for seed in (1, 2, 3):
                dataset = synthetic_dataset(n_users=50, n_tasks=400, seed=seed)
                config = SimulationConfig(n_days=8, seed=seed, drift_rate=0.35)
                result = run_simulation(dataset, ETA2Approach(alpha=alpha), config)
                # Late days only: drift has accumulated by then.
                errors.append(float(np.nanmean(result.errors_by_day()[4:])))
            results[alpha] = float(np.mean(errors))
        return results

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nlate-day error under expertise drift, by alpha: {errors}")
    # Under drift, remembering everything forever (alpha = 1) must not beat
    # a decayed memory: stale evidence mis-ranks users whose skill moved.
    best_decayed = min(errors[0.1], errors[0.5])
    assert best_decayed <= errors[1.0] * 1.05


def test_extension_exploration_identifies_specialists(benchmark):
    def specialists_found(exploration_rate, seed):
        dataset = sfv_dataset(seed=seed)
        config = SimulationConfig(n_days=6, seed=seed)
        approach = ETA2Approach(gamma=0.3, alpha=0.1, exploration_rate=exploration_rate)
        result = run_simulation(dataset, approach, config)
        true_domains = dataset.world().true_domains()[result.processed_task_order]
        mapping = match_domains(result.task_domain_labels, true_domains)
        true_expertise = dataset.world().true_expertise_matrix()
        qualities = []
        for discovered, true_domain in mapping.items():
            estimated = result.expertise_snapshot[discovered]
            top = np.argsort(-estimated)[:3]
            qualities.append(float(np.mean(true_expertise[top, true_domain])))
        return float(np.mean(qualities)), result.mean_estimation_error

    def run():
        rows = {}
        for rate in (0.0, 0.2):
            quality, error = zip(*(specialists_found(rate, seed) for seed in (3, 4, 5)))
            rows[rate] = (float(np.mean(quality)), float(np.mean(error)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nexploration rate -> (true expertise of chosen top-3, estimation error):")
    for rate, (quality, error) in rows.items():
        print(f"  {rate:.1f} -> ({quality:.2f}, {error:.3f})")
    # Exploration should not collapse estimation quality...
    assert rows[0.2][1] < rows[0.0][1] * 1.4
    # ...and the chosen specialists must stay well above the population mean
    # expertise (~1.1 for the SFV generator).
    assert rows[0.2][0] > 1.4
