"""Microbenchmarks: wall-clock scaling of the core algorithmic kernels.

Unlike the figure benchmarks (one-shot, correctness-asserting), these time
the hot kernels across input sizes with repeated rounds — the numbers a
systems reviewer would ask for.  Rough complexity targets:

- batch MLE: O(iterations x observed entries) since the sparse rewrite,
- Algorithm 1 greedy: O(K (m + n)) pair selections,
- average-linkage clustering: O(merges x clusters^2) vectorised,
- SGNS training: O(epochs x pairs x dim).

Setting ``REPRO_BENCH_QUICK=1`` shrinks every size for CI smoke runs (the
committed full-size record lives in ``BENCH_core.json``; see
``repro.perf.baseline``).
"""

import os

import numpy as np
import pytest

from repro.clustering import hierarchical_clustering
from repro.clustering.dynamic import DynamicHierarchicalClustering
from repro.clustering.linkage import AverageLinkage
from repro.core.allocation import AllocationProblem, greedy_allocate
from repro.core.truth import estimate_truth
from repro.semantics.embeddings import PPMISVDEmbedding, generate_topical_corpus
from repro.truthdiscovery.base import ObservationMatrix

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _mle_inputs(n_users, n_tasks, seed=0):
    rng = np.random.default_rng(seed)
    expertise = rng.uniform(0.3, 3.0, (n_users, 8))
    domains = rng.integers(0, 8, n_tasks)
    truths = rng.uniform(0, 20, n_tasks)
    sigmas = rng.uniform(0.5, 5.0, n_tasks)
    mask = rng.random((n_users, n_tasks)) < 0.2
    for task in range(n_tasks):
        if not mask[:, task].any():
            mask[rng.integers(n_users), task] = True
    values = truths[None, :] + rng.standard_normal((n_users, n_tasks)) * sigmas[None, :] / expertise[
        :, domains
    ]
    return ObservationMatrix(values=np.where(mask, values, 0.0), mask=mask), domains


@pytest.mark.parametrize("n_tasks", [100, 300] if QUICK else [200, 1000])
def test_mle_scaling(benchmark, n_tasks):
    observations, domains = _mle_inputs(100, n_tasks)
    result = benchmark(lambda: estimate_truth(observations, domains))
    assert result.converged


@pytest.mark.parametrize("n_shards", [1, 2])
def test_mle_parallel_overhead(benchmark, n_shards):
    """Sharded solve (in-process runner: pure coordination overhead) and
    the correctness gate: results must be bit-identical to serial."""
    from repro.core.parallel import ParallelConfig, ParallelTruthEngine

    n_tasks = 300 if QUICK else 1000
    observations, domains = _mle_inputs(100, n_tasks)
    serial = estimate_truth(observations, domains)
    engine = ParallelTruthEngine(ParallelConfig(n_shards=n_shards, use_processes=False))
    try:
        result = benchmark(lambda: engine.estimate_truth(observations, domains))
    finally:
        engine.close()
    np.testing.assert_array_equal(result.truths, serial.truths)
    np.testing.assert_array_equal(result.expertise, serial.expertise)


@pytest.mark.parametrize("n_tasks", [100, 300] if QUICK else [200, 1000])
def test_greedy_allocation_scaling(benchmark, n_tasks):
    rng = np.random.default_rng(1)
    problem = AllocationProblem(
        expertise=rng.uniform(0.1, 3.0, (100, n_tasks)),
        processing_times=rng.uniform(0.5, 1.5, n_tasks),
        capacities=rng.uniform(8.0, 16.0, 100),
    )
    outcome = benchmark(lambda: greedy_allocate(problem))
    assert outcome.assignment.respects_capacities(problem)


@pytest.mark.parametrize("n_points", [50, 150] if QUICK else [100, 400])
def test_clustering_scaling(benchmark, n_points):
    rng = np.random.default_rng(2)
    centers = rng.uniform(-10, 10, (8, 4))
    points = np.vstack(
        [rng.normal(centers[i % 8], 0.3, size=(1, 4)) for i in range(n_points)]
    )
    diff = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diff**2).sum(-1))
    result = benchmark(lambda: hierarchical_clustering(distances, gamma=0.3))
    assert result.cluster_count >= 1


@pytest.mark.parametrize("k", [160] if QUICK else [500])
def test_linkage_construction_scaling(benchmark, k):
    """Sum-matrix construction from singleton groups (the vectorised kernel)."""
    rng = np.random.default_rng(6)
    points = rng.random((k, 3))
    base = np.abs(points[:, None, :] - points[None, :, :]).sum(axis=-1)
    np.fill_diagonal(base, 0.0)
    groups = [[i] for i in range(k)]
    engine = benchmark(lambda: AverageLinkage(base, groups))
    assert engine.cluster_count == k


def test_dynamic_add_time(benchmark):
    """Warm-up fit plus incremental arrival batches (grow-only cache path)."""
    rng = np.random.default_rng(7)
    warmup_size, batches, batch_size = (120, 4, 10) if QUICK else (400, 8, 25)
    warmup = rng.normal(0.0, 1.0, (warmup_size, 64))
    arrivals = [rng.normal(0.0, 1.0, (batch_size, 64)) for _ in range(batches)]

    def run():
        clustering = DynamicHierarchicalClustering(gamma=0.5)
        clustering.fit(warmup)
        for batch in arrivals:
            clustering.add(batch)
        return clustering

    clustering = benchmark(run)
    assert clustering.point_count == warmup_size + batches * batch_size


def test_ppmi_training_time(benchmark):
    corpus = generate_topical_corpus(sentences_per_domain=50 if QUICK else 200, seed=3)
    model = benchmark(lambda: PPMISVDEmbedding(corpus.sentences, dim=32))
    assert model.vocabulary_size > 100


def test_incremental_update_time(benchmark):
    from repro.core.update import ExpertiseUpdater

    observations, domains = _mle_inputs(100, 300, seed=4)
    updater = ExpertiseUpdater(n_users=100, alpha=0.5)
    updater.incorporate(observations, domains)
    new_obs, new_domains = _mle_inputs(100, 200, seed=5)

    def step():
        updater.incorporate(new_obs, new_domains, commit=False)

    benchmark(step)
