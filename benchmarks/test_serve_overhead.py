"""Serving-layer overhead: the fault-free ingest path must be near-free.

The acceptance bar: pushing a day's traffic through the full
:class:`~repro.serve.service.IngestionService` stack — admission
control, checksummed WAL appends, commit markers, and the service-owned
checkpoint — must cost <5% over the *direct durable baseline*: calling
``ETA2System.step_from_batch`` with the same reports and checkpointing
after every day.  The baseline checkpoints because any deployment that
survives a restart pays that cost with or without the serving layer;
leaving it out would bill the service for durability the comparison
target also needs.

What the ratio covers and deliberately excludes:

- **Covered** — every per-record cost of serving: canonical-JSON WAL
  composition + SHA-256 checksums, per-batch admission decisions and
  health bookkeeping, day open/commit markers, and the exactly-once
  rollover plumbing.
- **Excluded** — one-time setup (system + service construction, first
  WAL segment creation) which a long-running service amortises to zero,
  and ``fsync`` latency, which is a storage-hardware property the
  ``sync`` policy knob already makes explicit (``"commit"``
  group-commits exactly twice per day; the bar runs under ``"none"``).
  The ``test_serve_day_cycle`` benchmark entry records the ``"commit"``
  policy's absolute cost, construction included, alongside the other
  microbenchmarks.

Measured with the repo's paired-round pattern (adjacent raw / served
timings so slow machine-wide drift cancels; *min* ratio across rounds,
the observation least polluted by scheduler noise).
"""

import time

import numpy as np
import pytest

from repro.core.pipeline import ETA2System
from repro.reliability.checkpoint import CheckpointManager
from repro.serve import IngestionService
from repro.simulation.engine import generate_traffic

ROUNDS = 9
# Shape chosen so the learning step carries realistic weight relative to
# traffic volume: many domains make the per-day EM + clustering work
# dominate, as it does at paper scale, while 20 submitters x 3 days keeps
# the ingest path fully exercised (60 batches, 360 reports, 120 tasks).
N_USERS = 20
N_TASKS = 120
N_DAYS = 3
N_DOMAINS = 20


def _trace():
    return generate_traffic(
        n_users=N_USERS,
        n_tasks=N_TASKS,
        n_days=N_DAYS,
        n_domains=N_DOMAINS,
        seed=5,
    )


def _system(trace):
    return ETA2System(
        n_users=trace.n_users, capacities=np.asarray(trace.capacities), seed=9
    )


def _run_raw(trace, system, checkpoints):
    """Direct durable baseline: step each day, checkpoint each day."""
    for ordinal, day in enumerate(trace.days):
        reports = [r for batch in day.batches for r in batch.reports]
        system.step_from_batch(day.tasks, reports)
        checkpoints.save(system, ordinal)
    return system


def _run_served(trace, service):
    """The same traffic through the full serving stack."""
    for day in trace.days:
        service.open_day(day.day, day.tasks)
        for batch in day.batches:
            service.submit(batch)
        service.seal_day()
    return service


def test_fault_free_serve_overhead_under_5_percent(tmp_path):
    trace = _trace()
    # Warm-up: imports, numpy first-call costs, file-system caches.
    _run_raw(trace, _system(trace), CheckpointManager(tmp_path / "warm-ck", keep=3))
    warm = IngestionService(_system(trace), tmp_path / "warm-wal", sync="none")
    _run_served(trace, warm)
    warm.close()

    ratios = []
    for round_no in range(ROUNDS):
        raw_system = _system(trace)
        checkpoints = CheckpointManager(tmp_path / f"ck-{round_no}", keep=3)
        service = IngestionService(
            _system(trace), tmp_path / f"wal-{round_no}", sync="none"
        )
        start = time.perf_counter()
        _run_raw(trace, raw_system, checkpoints)
        raw = time.perf_counter() - start
        start = time.perf_counter()
        _run_served(trace, service)
        served = time.perf_counter() - start
        service.close()
        ratios.append(served / raw)
    overhead = min(ratios) - 1.0
    assert overhead < 0.05, (
        f"fault-free serving overhead {overhead:.2%} exceeds the 5% budget "
        f"(per-round served/raw ratios: {[f'{r:.3f}' for r in ratios]})"
    )


def test_slo_monitoring_overhead_under_5_percent(tmp_path):
    """Live SLO evaluation must be near-free on the serving fast path.

    Paired rounds of the same served traffic with a metrics registry
    attached, with and without the stock SLO rule set.  The monitored
    variant pays one :func:`evaluate_metrics_slos` pass plus the gauge
    family per day boundary — nothing per batch — so the min-ratio
    overhead must clear the same 5% bar as serving itself.
    """
    from repro.observability.analyze.slo import default_serving_slos
    from repro.observability.metrics import MetricsRegistry

    trace = _trace()
    warm = IngestionService(
        _system(trace),
        tmp_path / "warm-wal",
        sync="none",
        metrics=MetricsRegistry(),
        slos=default_serving_slos(),
    )
    _run_served(trace, warm)
    warm.close()

    ratios = []
    for round_no in range(ROUNDS):
        plain = IngestionService(
            _system(trace),
            tmp_path / f"plain-{round_no}",
            sync="none",
            metrics=MetricsRegistry(),
        )
        monitored = IngestionService(
            _system(trace),
            tmp_path / f"slo-{round_no}",
            sync="none",
            metrics=MetricsRegistry(),
            slos=default_serving_slos(),
        )
        start = time.perf_counter()
        _run_served(trace, plain)
        base = time.perf_counter() - start
        start = time.perf_counter()
        _run_served(trace, monitored)
        with_slos = time.perf_counter() - start
        plain.close()
        monitored.close()
        ratios.append(with_slos / base)
    overhead = min(ratios) - 1.0
    assert overhead < 0.05, (
        f"SLO monitoring overhead {overhead:.2%} exceeds the 5% budget "
        f"(per-round monitored/plain ratios: {[f'{r:.3f}' for r in ratios]})"
    )


def test_served_state_identical_to_raw(tmp_path):
    """The overhead comparison is honest: both paths do the same learning."""
    from repro.core.serialization import state_fingerprint

    trace = _trace()
    raw = _run_raw(
        trace, _system(trace), CheckpointManager(tmp_path / "ck", keep=3)
    )
    service = IngestionService(_system(trace), tmp_path / "wal", sync="none")
    for day in trace.days:
        service.open_day(day.day, day.tasks)
        for batch in day.batches:
            assert service.submit(batch).accepted, "a shed batch would skew the ratio"
        service.seal_day()
    service.close()
    assert service.state_fingerprint() == state_fingerprint(raw)


def test_serve_day_cycle(benchmark, tmp_path):
    """Absolute cost of one full served run under the default commit policy.

    Unlike the ratio test this includes construction and real fsyncs —
    the number an operator budgeting a deployment should look at.
    """
    trace = _trace()
    counter = {"n": 0}

    def cycle():
        counter["n"] += 1
        service = IngestionService(
            _system(trace), tmp_path / f"bench-{counter['n']}", sync="commit"
        )
        _run_served(trace, service)
        service.close()

    benchmark(cycle)


def test_step_from_batch_raw(benchmark, tmp_path):
    """Absolute cost of the direct durable baseline (step + checkpoint)."""
    trace = _trace()
    counter = {"n": 0}

    def cycle():
        counter["n"] += 1
        _run_raw(
            trace,
            _system(trace),
            CheckpointManager(tmp_path / f"raw-{counter['n']}", keep=3),
        )

    benchmark(cycle)
