"""Table 1: chi-square normality non-rejection rates on the survey data."""

from repro.experiments import table1_normality

from conftest import run_once


def test_table1_normality(benchmark, quick_config):
    result = run_once(benchmark, table1_normality, quick_config)
    print()
    print(result.render())

    # The paper reports ~87-90% non-rejection across alpha in {.5,...,.05};
    # our generated survey matches at the standard significance levels (the
    # alpha=0.5 "level" is a very loose criterion under which even truly
    # normal samples fail half the time — see chi_square_normality_test).
    rates = dict(zip(result.alphas, result.pass_rates))
    assert rates[0.05] >= 0.80
    assert rates[0.1] >= 0.75
    # Non-rejection can only grow as the significance level shrinks.
    ordered = [rates[a] for a in sorted(rates, reverse=True)]
    assert all(a <= b + 1e-12 for a, b in zip(ordered, ordered[1:]))
