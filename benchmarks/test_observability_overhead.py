"""Telemetry overhead: tracing a run must cost <5% wall clock.

The issue's acceptance bar: with tracing enabled under a virtual clock,
a traced closed-loop run stays within 5% of the untraced baseline, and
with tracing disabled the output is bit-identical (the ``NULL_TRACER``
path adds only a handful of attribute checks per step).

Telemetry emission is O(events), and the loop emits a few dozen events
per day against an iterative MLE that does O(users x tasks) work per
iteration — so the ratio should sit far below the bar.  The trace is
written to a ring buffer only (no sink) so the benchmark measures
instrumentation cost, not disk I/O.

``REPRO_BENCH_QUICK=1`` shrinks the world for CI smoke runs.
"""

import os
import time

import numpy as np

from repro.datasets.synthetic import synthetic_dataset
from repro.observability import Telemetry
from repro.simulation.approaches import ETA2Approach
from repro.simulation.engine import SimulationConfig, run_simulation

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

N_USERS = 30 if QUICK else 50
N_TASKS = 120 if QUICK else 300
N_DAYS = 3 if QUICK else 5
SIM_SEED = 2018
ROUNDS = 5


def _run(traced):
    dataset = synthetic_dataset(n_tasks=N_TASKS, n_users=N_USERS, seed=123)
    approach = ETA2Approach()
    config = SimulationConfig(n_days=N_DAYS, seed=SIM_SEED)
    telemetry = Telemetry.create(config=config, seed=SIM_SEED) if traced else None
    result = run_simulation(dataset, approach, config, telemetry=telemetry)
    if telemetry is not None:
        telemetry.finalize()
    return result


def test_tracing_overhead_under_5_percent():
    # Warm-up pass so neither side pays first-call costs.
    _run(False)
    _run(True)

    ratios = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run(False)
        plain = time.perf_counter() - start
        start = time.perf_counter()
        _run(True)
        traced = time.perf_counter() - start
        ratios.append(traced / plain)
    overhead = min(ratios) - 1.0
    assert overhead < 0.05, (
        f"telemetry overhead {overhead:.2%} exceeds the 5% budget "
        f"(per-round traced/plain ratios: {[f'{r:.3f}' for r in ratios]})"
    )


def test_tracing_identical_results():
    """Instrumentation observes the loop; it must never perturb it."""
    plain = _run(False)
    traced = _run(True)
    for day_a, day_b in zip(plain.days, traced.days):
        assert np.array_equal(day_a.truths, day_b.truths)
        assert day_a.estimation_error == day_b.estimation_error


def test_closed_loop_traced(benchmark):
    result = benchmark(lambda: _run(True))
    assert result.days[-1].estimation_error < 1.0


def test_emit_microbenchmark(benchmark):
    """Raw cost of one ring-buffer emission (the per-event unit cost)."""
    from repro.observability import RunTracer

    tracer = RunTracer(capacity=1024)
    benchmark(lambda: tracer.emit("mle.iteration", iteration=3, delta=0.125))
