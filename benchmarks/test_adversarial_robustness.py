"""Extension benchmark: robustness to fabricating users.

The paper's introduction motivates truth analysis with users who fabricate
data instead of performing tasks; this benchmark measures it.  As the
adversary fraction grows, ETA2's error should degrade far more slowly than
the mean baseline's (it learns the fabricators have low expertise, weights
them down, and stops allocating to them), and its expertise estimates
should separate honest users from adversaries.
"""

import numpy as np
import pytest

from repro.experiments.adversarial import adversarial_robustness


@pytest.mark.parametrize("kind", ["random", "colluding"])
def test_adversarial_robustness(benchmark, quick_config, kind):
    result = benchmark.pedantic(
        lambda: adversarial_robustness(quick_config, kind=kind, fractions=(0.0, 0.2, 0.4)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    eta2 = np.asarray(result.error_series["ETA2"])
    mean = np.asarray(result.error_series["baseline-mean"])
    # ETA2 stays ahead of the unweighted mean at every contamination level.
    assert np.all(eta2 < mean)
    gaps = np.asarray(result.detection_gaps[1:], dtype=float)

    if kind == "random":
        # Independent fabricators are easy prey: their answers disagree with
        # everyone, their expertise collapses, and ETA2 barely degrades.
        assert eta2[-1] < 2.5 * eta2[0]
        assert np.all(gaps > 0.1)
    else:
        # Collusion is the known failure mode of agreement-based truth
        # discovery: at 20% the colluders are still outvoted and detected,
        # but at 40% they dominate enough tasks that perfect mutual
        # agreement *earns* them high expertise (the detection gap drops,
        # typically below zero) and the error jumps.  The paper's model has
        # the same vulnerability; we document rather than hide it.
        assert gaps[0] > 0.1            # 20%: detected
        assert gaps[1] < gaps[0] - 0.5  # 40%: detection collapses
        assert eta2[1] < 2.5 * eta2[0]  # error still controlled at 20%
        print(
            "\nNOTE: at a 40% colluding fraction the attack succeeds "
            f"(detection gap {gaps[1]:+.2f}, error {eta2[2]:.2f}) — the "
            "inherent limit of agreement-based expertise inference."
        )
