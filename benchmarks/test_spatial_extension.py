"""Extension benchmark: travel-aware allocation in a spatial city.

The paper's model charges every user the same processing time; in a city a
task costs sensing time plus travel.  With the allocation core generalised
to per-pair times, a travel-aware Algorithm 1 covers (nearly) the whole
city and satisfies far more tasks than a planner that budgets sensing time
only and abandons its overflow at execution time.
"""

import numpy as np

from repro.experiments.spatial import spatial_comparison


def test_spatial_extension(benchmark):
    result = benchmark.pedantic(
        lambda: spatial_comparison(speeds=(2.0, 4.0, 8.0), replications=3, seed=2017),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    aware_quality = np.asarray(result.quality_series["travel-aware"])
    oblivious_quality = np.asarray(result.quality_series["travel-oblivious"])
    # The headline: travel-awareness dominates at every speed, by a wide
    # margin when travel is slow.
    assert np.all(aware_quality > oblivious_quality)
    assert aware_quality[0] > 1.5 * oblivious_quality[0]

    # Mechanism checks: the aware plan executes fully and covers the city;
    # the oblivious plan is heavily truncated at low speed.
    assert np.all(np.asarray(result.completion_series["travel-aware"]) > 0.999)
    assert np.all(np.asarray(result.coverage_series["travel-aware"]) > 0.9)
    assert result.completion_series["travel-oblivious"][0] < 0.5

    # Both planners improve as travel gets faster.
    assert aware_quality[-1] >= aware_quality[0]
    assert oblivious_quality[-1] >= oblivious_quality[0]
