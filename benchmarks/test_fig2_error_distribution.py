"""Fig. 2: pooled observation errors follow the standard normal."""

import numpy as np

from repro.experiments import fig2_error_distribution

from conftest import run_once


def test_fig2_error_distribution(benchmark, quick_config):
    result = run_once(benchmark, fig2_error_distribution, quick_config)
    print()
    print(result.render())

    for name in result.dataset_names:
        hist = result.histograms[name]
        # The histogram is a proper density over the plotted support...
        assert abs(hist.total_mass() - 1.0) < 1e-6
        # ...that hugs the N(0, 1) curve (the paper's visual claim).
        assert result.density_gaps[name] < 0.08, name
        # And it peaks near zero, like the standard normal.
        peak_center = hist.centers[int(np.argmax(hist.density))]
        assert abs(peak_center) < 0.75, name
