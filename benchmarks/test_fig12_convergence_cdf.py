"""Fig. 12: CDF of MLE iterations to convergence."""

from repro.experiments import fig12_convergence_cdf

from conftest import run_once


def test_fig12_convergence_cdf(benchmark, quick_config):
    result = run_once(benchmark, fig12_convergence_cdf, quick_config)
    print()
    print(result.render())

    # The paper: the majority of processes converge within ~10 iterations;
    # nearly all within a few tens (synthetic's tail reaches ~60).  Our
    # SFV runs sit a hair above the paper's medians (sparser observations
    # per task), so the caps carry a small margin.
    for name in ("survey", "sfv", "synthetic"):
        assert result.quantile(name, 0.5) <= 12.0, name
        cap = 60.0 if name == "synthetic" else 30.0
        assert result.quantile(name, 0.95) <= cap, name
