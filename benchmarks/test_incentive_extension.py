"""Extension benchmark: quality-aware incentives close the effort loop.

The paper's fixed per-task payment is accuracy-blind; with strategic users
that means slacking dominates and the collected data is junk that no truth
analysis can repair.  An accuracy bonus (audited against the server's own
final estimates) makes high effort individually rational for skilled users,
and ETA2's expertise tracking concentrates the work — and the payouts — on
exactly those users.
"""

import numpy as np

from repro.experiments.incentives import incentive_comparison


def test_incentive_extension(benchmark):
    result = benchmark.pedantic(
        lambda: incentive_comparison(n_days=5, replications=3, seed=2017),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    flat = np.asarray(result.error_series["flat"])
    bonus = np.asarray(result.error_series["accuracy-bonus"])
    flat_effort = np.asarray(result.high_effort_series["flat"])
    bonus_effort = np.asarray(result.high_effort_series["accuracy-bonus"])
    flat_pay = float(np.sum(result.payout_series["flat"]))
    bonus_pay = float(np.sum(result.payout_series["accuracy-bonus"]))

    # Flat pay: nobody works hard, the error stays several times higher.
    assert np.all(flat_effort < 0.05)
    assert float(np.mean(bonus)) < 0.4 * float(np.mean(flat))
    # The bonus recruits high effort — overwhelmingly so once allocation
    # concentrates on users for whom the bonus is worth it.
    assert bonus_effort[-1] > 0.8
    # And the payout premium for that quality is modest (< 50%).
    assert bonus_pay < 1.5 * flat_pay
