"""Fig. 7: observation error shrinks as user expertise grows."""

import numpy as np

from repro.experiments import fig7_expertise_vs_error

from conftest import run_once


def test_fig7_expertise_vs_error(benchmark, quick_config):
    result = run_once(benchmark, fig7_expertise_vs_error, quick_config, dataset_name="sfv")
    print()
    print(result.render())

    medians = [stats.median for stats in result.boxplots if stats.count > 0]
    assert len(medians) >= 3
    # Clear downward trend: the highest-expertise bin's median error is a
    # small fraction of the lowest bin's (the paper: near zero above u = 2).
    assert medians[-1] < 0.5 * medians[0]
    # And the trend is monotone when smoothed over adjacent bins.
    pairs = list(zip(medians, medians[1:]))
    decreasing = sum(1 for a, b in pairs if b <= a + 1e-9)
    assert decreasing >= len(pairs) - 1
