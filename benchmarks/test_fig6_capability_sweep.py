"""Fig. 6: estimation error vs. average processing capability tau."""

import numpy as np
import pytest

from repro.experiments import fig6_capability_sweep

from conftest import run_once


@pytest.mark.parametrize("dataset_name", ["survey", "synthetic"])
def test_fig6_capability_sweep(benchmark, quick_config, dataset_name):
    result = run_once(
        benchmark,
        fig6_capability_sweep,
        dataset_name,
        quick_config,
        taus=(8.0, 12.0, 16.0),
    )
    print()
    print(result.render())

    eta2 = np.asarray(result.series["ETA2"])
    # More capability -> more observers per task -> lower error.
    assert eta2[-1] < eta2[0]

    # At moderate-to-large tau ETA2 outperforms every baseline (the paper
    # allows baselines to win at very small tau, where expertise cannot be
    # estimated from the few observations).
    for name, series in result.series.items():
        if name == "ETA2":
            continue
        assert eta2[-1] < series[-1], name
        assert eta2[1] < series[1], name
