"""Ablation benchmarks beyond the paper (DESIGN.md section 5).

1. Greedy extra pass — Algorithm 1 with vs. without the cardinality-greedy
   second pass that restores the 1/2-approximation guarantee.
2. Domain knowledge — ETA2 with dynamic clustering vs. oracle (true) domains
   vs. a single global domain (i.e. plain reliability, no expertise).
3. Embedding backends — PPMI+SVD vs. skip-gram vs. hashing, measured by the
   clustering purity they induce.
"""

import numpy as np
import pytest

from repro.clustering import DynamicHierarchicalClustering
from repro.core.allocation import AllocationProblem, MaxQualityAllocator, allocation_objective
from repro.datasets import survey_dataset, synthetic_dataset
from repro.rng import ensure_rng
from repro.semantics import semantics_for_descriptions
from repro.semantics.embeddings import (
    HashingEmbedding,
    PPMISVDEmbedding,
    SkipGramEmbedding,
    generate_topical_corpus,
)
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.approaches import ETA2Approach

from conftest import run_once


def _heavy_tailed_problem(seed=0):
    """An instance with wildly different processing times, the regime where
    the efficiency greedy alone can be arbitrarily bad."""
    rng = ensure_rng(seed)
    n_users, n_tasks = 10, 40
    expertise = rng.uniform(0.1, 3.0, (n_users, n_tasks))
    times = np.where(rng.random(n_tasks) < 0.3, rng.uniform(8.0, 12.0, n_tasks), rng.uniform(0.2, 0.6, n_tasks))
    capacities = rng.uniform(10.0, 14.0, n_users)
    return AllocationProblem(expertise=expertise, processing_times=times, capacities=capacities, epsilon=0.5)


def test_ablation_extra_greedy_pass(benchmark):
    def run():
        with_pass = MaxQualityAllocator(extra_pass=True)
        without_pass = MaxQualityAllocator(extra_pass=False)
        gains = []
        for seed in range(10):
            problem = _heavy_tailed_problem(seed)
            v_with = allocation_objective(problem, with_pass.allocate(problem))
            v_without = allocation_objective(problem, without_pass.allocate(problem))
            gains.append(v_with - v_without)
        return np.asarray(gains)

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nextra-pass objective gain: mean={gains.mean():.4f} max={gains.max():.4f}")
    # The extra pass can only help (the better of two solutions is kept)...
    assert np.all(gains >= -1e-9)
    # ...and does help somewhere in this heavy-tailed regime.
    assert gains.max() > 0.0


def test_ablation_domain_knowledge(benchmark, quick_config):
    def run():
        dataset = survey_dataset(n_tasks=quick_config.survey_tasks, seed=11)
        config = SimulationConfig(n_days=5, seed=23)
        results = {}
        for label, kwargs in {
            "clustering": {"use_clustering": True},
            "oracle-domains": {"use_clustering": False},
            "single-domain": {"use_clustering": False, "single_domain": True},
        }.items():
            single = kwargs.pop("single_domain", False)
            if single:
                # Collapse all tasks to one domain: expertise becomes plain
                # per-user reliability.
                flattened = dataset.with_capacities(np.array([u.capacity for u in dataset.users]))
                from dataclasses import replace as dc_replace

                tasks = tuple(dc_replace(t, true_domain=0) for t in flattened.tasks)
                from repro.datasets.base import CrowdsourcingDataset

                ds = CrowdsourcingDataset(
                    name="survey-single",
                    users=tuple(
                        type(u)(user_id=u.user_id, expertise=(u.expertise[0],), capacity=u.capacity)
                        for u in flattened.users
                    ),
                    tasks=tasks,
                    n_true_domains=1,
                    domains_known=True,
                )
                # NOTE: observations now use expertise[0] for every task —
                # this measures the *algorithm* without domain awareness on
                # a domainless world, i.e. an upper bound for reliability-
                # only modelling.
                results[label] = run_simulation(ds, ETA2Approach(gamma=0.3, alpha=0.5, use_clustering=False), config)
            else:
                results[label] = run_simulation(
                    dataset, ETA2Approach(gamma=0.3, alpha=0.5, **kwargs), config
                )
        return {k: v.mean_estimation_error for k, v in results.items()}

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ndomain-knowledge ablation: {errors}")
    # Clustering recovers most of the oracle's benefit.
    assert errors["clustering"] <= errors["oracle-domains"] * 1.35


@pytest.mark.parametrize("backend", ["ppmi", "skipgram", "hashing"])
def test_ablation_embedding_backends(benchmark, backend):
    def run():
        corpus = generate_topical_corpus(sentences_per_domain=120, seed=5)
        if backend == "ppmi":
            model = PPMISVDEmbedding(corpus.sentences, dim=24)
        elif backend == "skipgram":
            model = SkipGramEmbedding(corpus.sentences, dim=24, epochs=5, seed=5)
        else:
            model = HashingEmbedding(dim=24)
        dataset = survey_dataset(seed=11)
        semantics = semantics_for_descriptions(dataset.descriptions(), model)
        vectors = np.vstack([s.concatenated for s in semantics])
        true = dataset.world().true_domains()
        from collections import Counter

        # Each backend has its own distance scale, so gamma's sweet spot
        # shifts; measure separability at the backend's best gamma.
        best_purity = 0.0
        for gamma in (0.15, 0.2, 0.3):
            clustering = DynamicHierarchicalClustering(gamma=gamma)
            labels = clustering.fit(vectors).all_labels
            if len(set(labels.tolist())) > 3 * dataset.n_true_domains:
                continue  # over-fragmented: purity would be vacuously high
            purity = sum(
                Counter(true[labels == d].tolist()).most_common(1)[0][1]
                for d in set(labels.tolist())
            ) / len(labels)
            best_purity = max(best_purity, purity)
        return best_purity

    purity = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{backend} clustering purity: {purity:.3f}")
    if backend in ("ppmi", "skipgram"):
        # Trained embeddings separate the topical domains.
        assert purity > 0.8
    else:
        # Hashing vectors carry no similarity; at non-fragmenting gammas
        # their clustering purity stays near chance.
        assert 0.0 <= purity <= 1.0
