"""Semantic-pipeline ablations: distance metric and phrase composition.

Measures clustering purity on the survey dataset under (a) Eq. 2's squared
Euclidean distance vs the cosine alternative, and (b) plain additive phrase
composition vs IDF-weighted composition — each at its best gamma, since
metrics set their own distance scales.
"""

from collections import Counter

import numpy as np
import pytest

from repro.clustering import DynamicHierarchicalClustering
from repro.datasets import survey_dataset
from repro.semantics.distance import semantics_for_descriptions
from repro.semantics.embeddings import PPMISVDEmbedding, generate_topical_corpus
from repro.semantics.weighting import IdfWeights, WeightedEmbedding


def _purity(labels, true):
    return sum(
        Counter(true[labels == d].tolist()).most_common(1)[0][1] for d in set(labels.tolist())
    ) / len(labels)


def _best_purity(vectors, true, metric, n_true_domains):
    best = 0.0
    for gamma in (0.1, 0.2, 0.3, 0.4):
        clustering = DynamicHierarchicalClustering(gamma=gamma, metric=metric)
        labels = clustering.fit(vectors).all_labels
        if len(set(labels.tolist())) > 3 * n_true_domains:
            continue  # over-fragmented
        best = max(best, _purity(labels, true))
    return best


@pytest.mark.parametrize("composition", ["additive", "idf"])
@pytest.mark.parametrize("metric", ["euclidean", "cosine"])
def test_semantic_ablation(benchmark, metric, composition):
    def run():
        corpus = generate_topical_corpus(sentences_per_domain=120, seed=9)
        model = PPMISVDEmbedding(corpus.sentences, dim=24)
        if composition == "idf":
            model = WeightedEmbedding(model, IdfWeights(corpus.sentences))
        dataset = survey_dataset(seed=21)
        semantics = semantics_for_descriptions(dataset.descriptions(), model)
        vectors = np.vstack([s.concatenated for s in semantics])
        true = dataset.world().true_domains()
        return _best_purity(vectors, true, metric, dataset.n_true_domains)

    purity = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{metric}+{composition} clustering purity: {purity:.3f}")
    # Every configuration must separate the topical domains cleanly; the
    # paper's pipeline is not fragile to these two design choices.
    assert purity > 0.9
