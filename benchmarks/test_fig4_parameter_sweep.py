"""Fig. 4: estimation error across the (alpha, gamma) parameter grid."""

import numpy as np
import pytest

from repro.experiments import fig4_parameter_sweep

from conftest import run_once


@pytest.mark.parametrize("dataset_name", ["survey", "synthetic"])
def test_fig4_parameter_sweep(benchmark, quick_config, dataset_name):
    result = run_once(
        benchmark,
        fig4_parameter_sweep,
        dataset_name,
        quick_config,
        alphas=(0.1, 0.5, 0.9),
        gammas=(0.2, 0.3, 0.6),
    )
    print()
    print(result.render())

    errors = result.errors
    assert np.all(np.isfinite(errors))
    # The sweep is informative: parameter choice moves the error.
    assert float(np.nanmax(errors)) > float(np.nanmin(errors))
    alpha, gamma, best_error = result.best
    assert best_error == float(np.nanmin(errors))
    if dataset_name == "synthetic":
        # Domains are pre-known: gamma is not swept.
        assert result.gammas == ()
    else:
        # Over-aggressive merging (large gamma) hurts on text datasets:
        # the best gamma in our embedding geometry is not the largest one.
        assert gamma < 0.6
