"""Extension benchmark: robustness to response dropouts.

Mobile users accept tasks and fail to deliver; the capacity and recruiting
cost are spent anyway.  ETA2 should degrade smoothly as the dropout rate
rises — fewer observations per task, but the expertise-aware weighting of
whatever does arrive keeps the error well under the baseline's.
"""

import numpy as np

from repro.experiments.config import dataset_factory
from repro.rng import spawn_rngs
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.approaches import ETA2Approach, MeanApproach


def test_dropout_robustness(benchmark, quick_config):
    rates = (0.0, 0.25, 0.5)

    def run():
        series = {"ETA2": [], "baseline-mean": []}
        for rate in rates:
            for name, factory in (
                ("ETA2", lambda: ETA2Approach()),
                ("baseline-mean", lambda: MeanApproach()),
            ):
                errors = []
                for rng in spawn_rngs(quick_config.seed, quick_config.replications):
                    dataset_seed, sim_seed = rng.spawn(2)
                    dataset = dataset_factory("synthetic", quick_config, seed=dataset_seed)
                    config = SimulationConfig(
                        n_days=quick_config.n_days, seed=sim_seed, dropout_rate=rate
                    )
                    errors.append(
                        run_simulation(dataset, factory(), config).mean_estimation_error
                    )
                series[name].append(float(np.nanmean(errors)))
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ndropout rate -> error:")
    for position, rate in enumerate(rates):
        print(
            f"  {rate:.2f}: ETA2 {series['ETA2'][position]:.3f}, "
            f"mean {series['baseline-mean'][position]:.3f}"
        )

    eta2 = np.asarray(series["ETA2"])
    mean = np.asarray(series["baseline-mean"])
    # ETA2 stays ahead at every dropout level and degrades smoothly.
    assert np.all(eta2 < mean)
    assert eta2[-1] < 3.0 * eta2[0]