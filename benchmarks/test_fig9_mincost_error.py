"""Fig. 9: estimation error of ETA2 vs ETA2-mc across tau."""

import numpy as np
import pytest

from repro.experiments import fig9_fig10_mincost_comparison

from conftest import run_once


@pytest.mark.parametrize("dataset_name", ["synthetic", "survey"])
def test_fig9_mincost_error(benchmark, quick_config, dataset_name):
    result = run_once(
        benchmark,
        fig9_fig10_mincost_comparison,
        dataset_name,
        quick_config,
        taus=(10.0, 14.0),
        round_budgets=(40.0, 80.0),
    )
    print()
    print(result.render_errors())

    eta2 = np.asarray(result.error_series["ETA2"])
    for name, series in result.error_series.items():
        if name == "ETA2":
            continue
        mc = np.asarray(series)
        # ETA2-mc targets the quality requirement, not the minimum error:
        # its error may sit above ETA2's but stays in the requirement's
        # neighbourhood (eps_bar = 0.5), not at baseline-mean levels.
        assert np.all(np.isfinite(mc))
        assert float(np.max(mc)) < 2.0 * result.error_limit, name
        # And max-quality ETA2 is never (meaningfully) worse than mc.
        assert float(np.mean(eta2)) <= float(np.mean(mc)) + 0.05, name
