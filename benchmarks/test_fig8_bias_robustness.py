"""Fig. 8: robustness of ETA2 to non-normal (uniform) observation noise."""

import numpy as np

from repro.experiments import fig8_bias_robustness

from conftest import run_once


def test_fig8_bias_robustness(benchmark, quick_config):
    result = run_once(
        benchmark,
        fig8_bias_robustness,
        quick_config,
        bias_fractions=(0.0, 0.25, 0.5, 0.75),
    )
    print()
    print(result.render())

    errors = np.asarray(result.errors)
    assert np.all(np.isfinite(errors))
    # The paper's claim: error stays consistently low with only a slight
    # increase as normality is violated.  Allow a modest degradation but no
    # blow-up relative to the clean setting.
    assert errors[-1] < 2.0 * errors[0]
    assert float(np.max(errors)) < 0.6
