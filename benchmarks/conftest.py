"""Shared configuration for the table/figure benchmarks.

Each benchmark regenerates one paper table or figure at a reduced scale
(fewer replications and smaller datasets than the paper's 100-run setting —
see ``ExperimentConfig.paper_scale()`` for the full-size knobs), prints the
same rows/series the paper reports, and asserts the qualitative *shape*:
who wins, which way curves move, where crossovers sit.
"""

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """Benchmark-scale experiment configuration."""
    return ExperimentConfig(
        replications=3,
        survey_tasks=150,
        sfv_tasks=180,
        synthetic_tasks=300,
        synthetic_users=50,
        seed=2017,
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
