"""Quickstart: the ETA2 loop on a small synthetic crowdsourcing world.

Builds an :class:`repro.core.pipeline.ETA2System` with pre-known expertise
domains (the Section 6.1.3 setting), runs a warm-up day plus four regular
days against a simulated user population, and prints how the normalised
estimation error falls as the system learns who is expert at what.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.core.pipeline import ETA2System, IncomingTask

N_USERS = 40
N_DOMAINS = 4
TASKS_PER_DAY = 30
N_DAYS = 5

rng = np.random.default_rng(7)

# Hidden ground truth: each user's expertise per domain (the system never
# sees this; it only sees the noisy observations it induces).
true_expertise = rng.uniform(0.3, 3.0, size=(N_USERS, N_DOMAINS))
capacities = rng.uniform(8.0, 14.0, size=N_USERS)

system = ETA2System(
    n_users=N_USERS,
    capacities=capacities,
    alpha=0.5,       # decay on historical expertise evidence (Eq. 7-8)
    epsilon=0.1,     # accuracy threshold of the allocation objective (Eq. 11)
    seed=1,
)


def make_day():
    """One day's tasks plus an observe() callback wired to the ground truth."""
    domains = rng.integers(0, N_DOMAINS, size=TASKS_PER_DAY)
    truths = rng.uniform(0.0, 20.0, size=TASKS_PER_DAY)
    sigmas = rng.uniform(0.5, 5.0, size=TASKS_PER_DAY)
    tasks = [
        IncomingTask(processing_time=float(rng.uniform(0.5, 1.5)), domain=int(domains[j]))
        for j in range(TASKS_PER_DAY)
    ]

    def observe(pairs):
        # Observation model of Section 2.4: N(mu_j, (sigma_j / u_ij)^2).
        return [
            truths[task]
            + rng.standard_normal() * sigmas[task] / true_expertise[user, domains[task]]
            for user, task in pairs
        ]

    return tasks, observe, truths, sigmas


def main():
    print(f"{N_USERS} users, {N_DOMAINS} domains, {TASKS_PER_DAY} tasks/day")
    print(f"{'day':>4}  {'error':>7}  {'pairs':>6}  {'MLE iters':>9}")
    for day in range(N_DAYS):
        tasks, observe, truths, sigmas = make_day()
        if not system.is_warmed_up:
            result = system.warmup(tasks, observe)  # random allocation
            label = "warm"
        else:
            result = system.step(tasks, observe)  # expertise-aware
            label = str(day + 1)
        error = float(np.nanmean(np.abs(result.truths - truths) / sigmas))
        print(f"{label:>4}  {error:7.4f}  {result.pair_count:6d}  {result.mle_iterations:9d}")

    # How well did the system learn the hidden expertise?
    matrix = system.expertise_matrix()
    estimated = np.column_stack([matrix.column(k) for k in range(N_DOMAINS)])
    correlation = np.corrcoef(estimated.ravel(), true_expertise.ravel())[0, 1]
    print(f"\ncorrelation(estimated expertise, true expertise) = {correlation:.3f}")


if __name__ == "__main__":
    main()
