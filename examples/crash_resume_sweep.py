"""Crash-resume sweeps: a supervised sweep that survives being killed.

A Fig. 4/5/6-style grid can run for hours; a mid-sweep crash under bare
``run_jobs`` discards every finished replication.  The supervised executor
journals each completed job to a JSONL file, so the cycle demonstrated
here is:

1. start a supervised sweep with chaos faults injected into the workers
   (kills, hangs, and raises — the sweep completes anyway, with retries);
2. "kill" a second sweep partway through (a graceful drain, exactly what
   SIGINT triggers) — the journal keeps the finished jobs;
3. resume from the journal: only the unfinished jobs execute, and the
   final results are bit-identical to an uninterrupted serial run.

Run with::

    python examples/crash_resume_sweep.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro.experiments.config  # noqa: F401 — imported first (import-order quirk)
from repro.experiments.config import ExperimentConfig
from repro.perf.sweep import ApproachSpec, replication_jobs, run_jobs
from repro.reliability.faults import WorkerFaultProfile
from repro.reliability.retry import RetryPolicy
from repro.reliability.supervisor import (
    SupervisedExecutor,
    SweepInterrupted,
    read_journal,
)


def make_jobs():
    config = ExperimentConfig(
        replications=6, n_days=2, seed=11, synthetic_tasks=30, synthetic_users=10
    )
    return replication_jobs("synthetic", ApproachSpec.eta2(gamma=0.3, alpha=0.5), config)


def errors(results):
    return np.array([result.mean_estimation_error for result in results])


def main():
    jobs = make_jobs()
    print(f"reference: serial run_jobs over {len(jobs)} replications")
    reference = run_jobs(jobs)

    print("\n1. chaos sweep: workers killed, hung, and raising — still completes")
    faults = WorkerFaultProfile(
        kill_rate=0.3, hang_rate=0.2, raise_rate=0.3, hang_seconds=60.0, seed=7
    )
    executor = SupervisedExecutor(
        n_jobs=2,
        retry=RetryPolicy(max_attempts=4, base_delay=0.01),
        job_timeout=30.0,
        watchdog_grace=5.0,
        worker_faults=faults,
    )
    outcome = executor.run(jobs)
    stats = outcome.stats
    print(
        f"   completed {stats.completed}/{len(jobs)} with {stats.retries} retries, "
        f"{stats.crashes} crashes, {stats.timeouts} timeouts, "
        f"{stats.worker_restarts} pool restarts, {stats.dead_lettered} dead letters"
    )
    assert np.array_equal(errors(outcome.results), errors(reference))
    print("   results bit-identical to the serial sweep")

    print("\n2. a sweep is killed after 3 jobs (journal keeps the finished work)")
    journal = Path(tempfile.mkdtemp(prefix="eta2_sweep_")) / "journal.jsonl"
    interrupted = SupervisedExecutor(n_jobs=None, journal=journal)

    class _DrainAfterThree:
        enabled = True
        completions = 0

        def emit(self, type, **data):
            if type == "job.complete":
                self.completions += 1
                if self.completions >= 3:
                    interrupted.request_shutdown()

    interrupted._tracer = _DrainAfterThree()
    try:
        interrupted.run(jobs)
    except SweepInterrupted as stop:
        print(f"   {stop}")
    completed = sum(1 for r in read_journal(journal) if r["type"] == "job.complete")
    print(f"   journal {journal.name}: {completed} completed jobs persisted")

    print("\n3. resume: only the unfinished jobs run")
    resumed = SupervisedExecutor(n_jobs=2, journal=journal, resume_journal=journal).run(jobs)
    print(
        f"   resumed {resumed.stats.resumed} from the journal, "
        f"ran {resumed.stats.completed} fresh"
    )
    assert np.array_equal(errors(resumed.results), errors(reference))
    print("   final results bit-identical to the uninterrupted serial sweep")

    journal.unlink()
    journal.parent.rmdir()


if __name__ == "__main__":
    main()
