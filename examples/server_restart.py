"""Crash recovery: an ETA2 server that survives restarts automatically.

A real crowdsourcing server runs for weeks; losing the learned expertise on
every restart would put it back in the warm-up regime.  With
``enable_checkpointing`` the system persists itself after *every* completed
day — atomic writes, checksums, rotation — so recovery needs no manual
save call at all: the example runs three days, "crashes" (even mid-write,
courtesy of the fault injector), then rebuilds with ``ETA2System.resume``
and continues where it left off.  A cold restart is shown for contrast.

Run with::

    python examples/server_restart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.pipeline import ETA2System, IncomingTask
from repro.reliability.faults import SimulatedCrash, crashing_writer

N_USERS = 40
N_DOMAINS = 4
TASKS_PER_DAY = 30

rng = np.random.default_rng(11)
true_expertise = rng.uniform(0.3, 3.0, size=(N_USERS, N_DOMAINS))
capacities = rng.uniform(8.0, 14.0, size=N_USERS)


def make_day():
    domains = rng.integers(0, N_DOMAINS, size=TASKS_PER_DAY)
    truths = rng.uniform(0.0, 20.0, size=TASKS_PER_DAY)
    sigmas = rng.uniform(0.5, 5.0, size=TASKS_PER_DAY)
    tasks = [
        IncomingTask(processing_time=float(rng.uniform(0.5, 1.5)), domain=int(domains[j]))
        for j in range(TASKS_PER_DAY)
    ]

    def observe(pairs):
        return [
            truths[task]
            + rng.standard_normal() * sigmas[task] / true_expertise[user, domains[task]]
            for user, task in pairs
        ]

    return tasks, observe, truths, sigmas


def run_day(system, label):
    tasks, observe, truths, sigmas = make_day()
    if system.is_warmed_up:
        result = system.step(tasks, observe)
    else:
        result = system.warmup(tasks, observe)
    error = float(np.nanmean(np.abs(result.truths - truths) / sigmas))
    print(f"  {label}: error {error:.4f}")
    return error


def main():
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="eta2_checkpoints_"))

    print("before the crash (checkpointing after every day):")
    system = ETA2System(n_users=N_USERS, capacities=capacities, alpha=0.5, seed=1)
    system.enable_checkpointing(checkpoint_dir, keep=3)
    for day in range(3):
        run_day(system, f"day {day + 1}")
    retained = [path.name for path in system.checkpoint_manager.checkpoints()]
    print(f"  checkpoints retained: {', '.join(retained)}")

    # The "crash": the process dies while writing yet another checkpoint.
    # The atomic write guarantees the interrupted file never becomes
    # visible — the last completed checkpoint stays intact.
    try:
        system.checkpoint_manager.save(
            system, system.completed_steps + 1, _writer=crashing_writer(0.5)
        )
    except SimulatedCrash as crash:
        print(f"  simulated power loss: {crash}")

    print("after restart (ETA2System.resume recovers the newest valid checkpoint):")
    restored = ETA2System.resume(
        checkpoint_dir, n_users=N_USERS, capacities=capacities, alpha=0.5, seed=2
    )
    assert restored.is_warmed_up
    warm_error = run_day(restored, "day 4")

    print("after restart (cold start, for contrast):")
    cold = ETA2System(n_users=N_USERS, capacities=capacities, alpha=0.5, seed=3)
    cold_error = run_day(cold, "day 4'")

    print(
        f"\nrestored system error {warm_error:.4f} vs cold restart {cold_error:.4f} "
        "(the cold start is back in the random-allocation warm-up regime)"
    )
    for path in checkpoint_dir.iterdir():
        path.unlink()
    checkpoint_dir.rmdir()


if __name__ == "__main__":
    main()
