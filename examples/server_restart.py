"""Persistence: an ETA2 server that survives restarts.

A real crowdsourcing server runs for weeks; losing the learned expertise on
every restart would put it back in the warm-up regime.  This example runs
three days, saves the system state to JSON, "restarts" (a brand-new
ETA2System object), restores, and continues — showing the restored system
performs like the original rather than like a cold start.

Run with::

    python examples/server_restart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.pipeline import ETA2System, IncomingTask
from repro.core.serialization import load_system_state, save_system_state

N_USERS = 40
N_DOMAINS = 4
TASKS_PER_DAY = 30

rng = np.random.default_rng(11)
true_expertise = rng.uniform(0.3, 3.0, size=(N_USERS, N_DOMAINS))
capacities = rng.uniform(8.0, 14.0, size=N_USERS)


def make_day():
    domains = rng.integers(0, N_DOMAINS, size=TASKS_PER_DAY)
    truths = rng.uniform(0.0, 20.0, size=TASKS_PER_DAY)
    sigmas = rng.uniform(0.5, 5.0, size=TASKS_PER_DAY)
    tasks = [
        IncomingTask(processing_time=float(rng.uniform(0.5, 1.5)), domain=int(domains[j]))
        for j in range(TASKS_PER_DAY)
    ]

    def observe(pairs):
        return [
            truths[task]
            + rng.standard_normal() * sigmas[task] / true_expertise[user, domains[task]]
            for user, task in pairs
        ]

    return tasks, observe, truths, sigmas


def run_day(system, label):
    tasks, observe, truths, sigmas = make_day()
    if system.is_warmed_up:
        result = system.step(tasks, observe)
    else:
        result = system.warmup(tasks, observe)
    error = float(np.nanmean(np.abs(result.truths - truths) / sigmas))
    print(f"  {label}: error {error:.4f}")
    return error


def main():
    state_path = Path(tempfile.gettempdir()) / "eta2_state.json"

    print("before restart:")
    system = ETA2System(n_users=N_USERS, capacities=capacities, alpha=0.5, seed=1)
    for day in range(3):
        run_day(system, f"day {day + 1}")
    save_system_state(system, state_path)
    print(f"  state saved to {state_path} ({state_path.stat().st_size} bytes)")

    print("after restart (state restored):")
    restored = ETA2System(n_users=N_USERS, capacities=capacities, alpha=0.5, seed=2)
    load_system_state(restored, state_path)
    warm_error = run_day(restored, "day 4")

    print("after restart (cold start, for contrast):")
    cold = ETA2System(n_users=N_USERS, capacities=capacities, alpha=0.5, seed=3)
    cold_error = run_day(cold, "day 4'")

    print(
        f"\nrestored system error {warm_error:.4f} vs cold restart {cold_error:.4f} "
        "(the cold start is back in the random-allocation warm-up regime)"
    )
    state_path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
