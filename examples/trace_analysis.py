"""Trace analytics end-to-end: query, profile, diff, and SLO grading.

Runs a small traced simulation twice with the same seed, then walks the
whole :mod:`repro.observability.analyze` surface on the resulting JSONL
traces — streaming queries with day context, the hierarchical span
profile (plus collapsed flamegraph stacks), the digest/diff regression
gate (identical verdict for same-seed runs, drift when the trace is
perturbed), and SLO grading of a synthetic serving trace.

Run with::

    PYTHONPATH=src python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.datasets import synthetic_dataset
from repro.observability import Telemetry
from repro.observability.analyze import (
    QuerySpec,
    aggregate_events,
    build_profile,
    collapsed_stacks,
    default_serving_slos,
    diff_digests,
    evaluate_trace_slos,
    render_profile,
    render_slo_report,
    select_events,
    trace_digest,
)
from repro.observability.tracer import canonical_json
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.approaches import ETA2Approach

workdir = Path(tempfile.mkdtemp(prefix="trace-analysis-"))


def traced_run(path, seed):
    dataset = synthetic_dataset(n_users=15, n_tasks=50, n_domains=3, seed=3)
    config = SimulationConfig(n_days=3, seed=seed)
    telemetry = Telemetry.create(trace_path=path, config=config, seed=seed)
    run_simulation(dataset, ETA2Approach(), config, telemetry=telemetry)
    telemetry.finalize()
    return path


print(f"working in {workdir}")
run_a = traced_run(workdir / "a.jsonl", seed=5)
run_b = traced_run(workdir / "b.jsonl", seed=5)

# --- query: filter + project, then a grouped streaming aggregate --------
print("\n== query: last MLE delta of each day ==")
spec = QuerySpec(types=("mle.converged",), select=("day", "data.iterations"))
for row in select_events(run_a, spec):
    print(f"  day {row['day']}: converged after {row['data.iterations']} iterations")

spec = QuerySpec(
    types=("mle.iteration",), aggregate="quantile", agg_field="data.delta",
    q=0.5, group_by="day",
)
print("== query: median per-iteration delta by day ==")
for group in aggregate_events(run_a, spec)["groups"]:
    print(f"  day {group['group']}: median delta {group['value']:.5f}")

# --- profile: span tree + flamegraph export -----------------------------
print("\n== profile: merged span tree ==")
root = build_profile(run_a)
print(render_profile(root))
print("== profile: collapsed stacks (flamegraph.pl input) ==")
for line in collapsed_stacks(root)[:6]:
    print(f"  {line}")

# --- diff: the regression gate ------------------------------------------
print("\n== diff: same seed vs perturbed ==")
digest_a, digest_b = trace_digest(run_a), trace_digest(run_b)
print(f"  same seed: {diff_digests(digest_a, digest_b).verdict}")

lines = run_a.read_text().splitlines()
kept = [line for line in lines if '"mle.iteration"' not in line]
kept += [line for line in lines if '"mle.iteration"' in line][:-1]
perturbed = workdir / "perturbed.jsonl"
perturbed.write_text("\n".join(kept) + "\n")
result = diff_digests(digest_a, trace_digest(perturbed))
print(f"  one event dropped: {result.verdict}")
for drift in result.drifts:
    if not drift.within:
        print(f"    {drift.kind}: {drift.name} {drift.a} -> {drift.b}")

# --- slo: grade a serving trace against the stock rules -----------------
print("\n== slo: a shed-heavy serving day against the stock rules ==")
records = [
    {"type": "serve.batch.accepted", "data": {"day": 0, "submitter": i}}
    for i in range(8)
]
records += [
    {"type": "serve.batch.rejected",
     "data": {"day": 0, "submitter": 9, "reason": "queue_full"}},
    {"type": "serve.day.sealed", "data": {"day": 0, "ordinal": 0}},
    {"type": "serve.day.applied", "data": {"day": 0, "ordinal": 0, "seconds": 0.4}},
]
serve_trace = workdir / "serve.jsonl"
serve_trace.write_text("\n".join(canonical_json(r) for r in records) + "\n")
print(render_slo_report(evaluate_trace_slos(serve_trace, default_serving_slos())))
