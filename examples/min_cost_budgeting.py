"""Min-cost budgeting: the ETA2 vs ETA2-mc cost/quality trade-off.

When recruiting a user costs money, filling every user's capacity (what
max-quality ETA2 does) is wasteful: most tasks reach the required quality
long before capacity runs out.  ETA2-mc (Algorithm 2) instead recruits in
small rounds of budget ``c^o`` and stops per task as soon as the Fisher-
information confidence interval certifies the quality requirement
``|error| < eps_bar`` at 95% confidence.

This example sweeps the per-round budget and prints the resulting cost and
error, reproducing the Figs. 9-10 story on the synthetic dataset.

Run with::

    python examples/min_cost_budgeting.py
"""

from repro.datasets import synthetic_dataset
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.approaches import ETA2Approach

SEED = 5
ERROR_LIMIT = 0.5       # eps_bar: required |mu_hat - mu| / sigma
CONFIDENCE = 0.95
ROUND_BUDGETS = (20.0, 40.0, 80.0, 160.0)


def main():
    dataset = synthetic_dataset(n_users=60, n_tasks=400, seed=SEED)
    config = SimulationConfig(n_days=5, seed=SEED)

    print(f"quality requirement: error < {ERROR_LIMIT} at {CONFIDENCE:.0%} confidence\n")
    print(f"{'approach':<22}  {'mean error':>10}  {'total cost':>10}")
    print("-" * 48)

    baseline = run_simulation(dataset, ETA2Approach(alpha=0.5), config)
    print(f"{'ETA2 (max-quality)':<22}  {baseline.mean_estimation_error:10.3f}  {baseline.total_cost:10.0f}")

    for budget in ROUND_BUDGETS:
        approach = ETA2Approach(
            alpha=0.5,
            allocator="min-cost",
            min_cost_round_budget=budget,
            min_cost_error_limit=ERROR_LIMIT,
            min_cost_confidence=CONFIDENCE,
        )
        result = run_simulation(dataset, approach, config)
        name = f"ETA2-mc (c0={budget:g})"
        print(f"{name:<22}  {result.mean_estimation_error:10.3f}  {result.total_cost:10.0f}")

    print(
        "\nETA2-mc meets the quality requirement at a fraction of the cost; "
        "very small c0 wastes rounds, very large c0 over-recruits per round."
    )


if __name__ == "__main__":
    main()
