"""Streaming ingestion: crash-and-replay with the durable serving layer.

The batch examples feed ``ETA2System`` directly; a deployed collector
cannot — reports arrive as submissions from many users, the process runs
for weeks, and it *will* be killed at inconvenient moments.  This example
drives the same deterministic traffic through
:class:`~repro.serve.service.IngestionService` three ways:

1. an uninterrupted reference run,
2. a run that is "killed" (``SimulatedCrash`` discards the whole service,
   in-memory state and all) after several chosen WAL offsets and restarted
   with ``resume=True`` each time — the final learned state is
   byte-identical to the reference run,
3. a burst that overflows the ingest queue, showing watermark-based load
   shedding (least-reputable submitters first) and recovery to READY.

Run with::

    python examples/streaming_service.py
"""

import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro.core.pipeline import ETA2System
from repro.serve import IngestionService, ReportBatch, read_wal
from repro.serve.drill import run_uninterrupted, run_with_crashes
from repro.simulation.engine import generate_traffic

N_USERS = 20
N_TASKS = 60
N_DAYS = 3
KILL_AT = (4, 11, 23)  # absolute WAL sequence numbers to crash after

trace = generate_traffic(n_users=N_USERS, n_tasks=N_TASKS, n_days=N_DAYS, seed=7)


def make_system():
    return ETA2System(
        n_users=trace.n_users, capacities=np.asarray(trace.capacities), seed=3
    )


with tempfile.TemporaryDirectory() as tmp:
    root = Path(tmp)

    print(f"traffic: {N_DAYS} days, {trace.total_batches} batches")

    # 1. Reference: the whole trace, no interruptions.
    reference = run_uninterrupted(trace, root / "reference", make_system)
    print(f"reference fingerprint: {reference[:16]}…")

    # 2. Crash at chosen WAL offsets; every restart resumes from the log.
    survived, crashes = run_with_crashes(
        trace, root / "crashy", make_system, kill_seqs=KILL_AT
    )
    print(f"crashed {crashes}x at WAL seqs {KILL_AT}, resumed each time")
    print(f"recovered fingerprint: {survived[:16]}…")
    assert survived == reference, "replay must be bit-identical"
    print("recovered state is bit-identical to the uninterrupted run")

    # What the log actually holds, replayed with checksum verification.
    kinds = Counter(record["type"] for record in read_wal(root / "crashy"))
    print(f"WAL records by type: {dict(sorted(kinds.items()))}")

    # 3. Backpressure: a tiny queue plus a 3x burst trips the shedding
    # regime; the service answers every submit (never blocks, never
    # raises) and recovers to READY once the day is sealed.
    service = IngestionService(
        make_system(), root / "burst", max_queue=8, high_watermark=6, low_watermark=3
    )
    day = trace.days[0]
    service.open_day(day.day, day.tasks)
    outcomes = Counter()
    for repeat in range(3):
        for batch in day.batches:
            burst = ReportBatch(
                submitter=batch.submitter,
                day=batch.day,
                reports=batch.reports,
                batch_id=f"burst-{repeat}-{batch.batch_id}",
            )
            result = service.submit(burst)
            outcomes[result.reason or "accepted"] += 1
    print(f"burst outcomes: {dict(outcomes)} (health now {service.health})")
    # Sealing empties the queue; the hysteresis flips back to READY at
    # the first submission below the low watermark.
    service.seal_day()
    service.open_day(trace.days[1].day, trace.days[1].tasks)
    probe = trace.days[1].batches[0]
    assert service.submit(probe).accepted
    print(f"after sealing and one quiet submission the service is {service.health}")
    service.seal_day()
    service.close()
