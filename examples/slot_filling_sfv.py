"""SFV scenario: strongly specialised sources and expertise discovery.

The paper's second dataset treats 18 automatic slot-filling systems as
"users": each is excellent on a few question types and poor on the rest —
the setting where expertise-awareness matters most.  This example runs ETA2
on the SFV-like dataset, then inspects the learned expertise profiles: for
each discovered domain, which systems does ETA2 consider the specialists,
and does that match the hidden ground truth?

Run with::

    python examples/slot_filling_sfv.py
"""

import numpy as np

from repro.datasets import sfv_dataset
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.approaches import ETA2Approach, MeanApproach
from repro.simulation.metrics import match_domains

SEED = 99


def main():
    dataset = sfv_dataset(seed=SEED)
    print(f"SFV dataset: {dataset.n_users} systems, {dataset.n_tasks} questions")

    config = SimulationConfig(n_days=5, seed=SEED)
    eta2 = run_simulation(dataset, ETA2Approach(gamma=0.3, alpha=0.1), config)
    mean = run_simulation(dataset, MeanApproach(), config)

    print(f"\n{'day':>4}  {'ETA2':>7}  {'mean-baseline':>13}")
    for eta2_day, mean_day in zip(eta2.days, mean.days):
        print(f"{eta2_day.day + 1:>4}  {eta2_day.estimation_error:7.3f}  {mean_day.estimation_error:13.3f}")

    # Align discovered domains with the generator's topical domains by task
    # overlap, then compare specialist rankings.
    true_domains = dataset.world().true_domains()[eta2.processed_task_order]
    mapping = match_domains(eta2.task_domain_labels, true_domains)
    true_expertise = dataset.world().true_expertise_matrix()

    # Note: allocation is exploitative — once ETA2 finds *a* good system for
    # a domain it keeps using it, so the absolute top specialist may stay
    # unobserved.  The meaningful question is whether the systems ETA2 rates
    # highest are genuinely strong in that domain.
    print("\nhidden quality of ETA2's chosen specialists, per discovered domain:")
    chosen_quality = []
    for discovered, true_domain in sorted(mapping.items()):
        estimated = eta2.expertise_snapshot[discovered]
        top_estimated = np.argsort(-estimated)[:3]
        quality = float(np.mean(true_expertise[top_estimated, true_domain]))
        chosen_quality.append(quality)
        print(
            f"  domain {discovered:>2}: estimated top-3 systems {top_estimated.tolist()} "
            f"| their true expertise {np.round(true_expertise[top_estimated, true_domain], 2).tolist()}"
        )
    population_mean = float(np.mean(true_expertise))
    print(
        f"\nmean true expertise of chosen specialists: {np.mean(chosen_quality):.2f} "
        f"vs population average {population_mean:.2f}"
    )


if __name__ == "__main__":
    main()
