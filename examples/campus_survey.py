"""Campus-survey scenario: ETA2 vs the reliability baselines on text tasks.

This is the paper's motivating workload: short natural-language questions
("What is the noise level around the municipal building?") answered by a
student population whose members are knowledgeable about *some* topics.
ETA2 must (1) cluster the questions into expertise domains from the text
alone, (2) learn per-student per-domain expertise, and (3) route questions
to the right students.

Run with::

    python examples/campus_survey.py
"""

import numpy as np

from repro.datasets import survey_dataset
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.approaches import ETA2Approach, MeanApproach, ReliabilityApproach
from repro.truthdiscovery import AverageLog, HubsAuthorities, TruthFinder

N_DAYS = 5
SEED = 2017


def main():
    dataset = survey_dataset(seed=SEED)
    print(f"survey dataset: {dataset.n_users} participants, {dataset.n_tasks} questions")
    print("sample questions:")
    for task in dataset.tasks[:3]:
        print(f"  - {task.description}")
    print()

    approaches = [
        ETA2Approach(gamma=0.3, alpha=0.5),
        ReliabilityApproach(HubsAuthorities()),
        ReliabilityApproach(AverageLog()),
        ReliabilityApproach(TruthFinder()),
        MeanApproach(),
    ]

    config = SimulationConfig(n_days=N_DAYS, seed=SEED)
    header = f"{'approach':<18}" + "".join(f"  day{d + 1:>2}" for d in range(N_DAYS)) + "   mean"
    print(header)
    print("-" * len(header))
    eta2_result = None
    for approach in approaches:
        result = run_simulation(dataset, approach, config)
        errors = result.errors_by_day()
        row = f"{result.approach_name:<18}" + "".join(f"  {e:5.3f}" for e in errors)
        print(row + f"  {result.mean_estimation_error:5.3f}")
        if result.approach_name == "ETA2":
            eta2_result = result

    # Peek inside ETA2: how many expertise domains did the clustering find?
    labels = eta2_result.task_domain_labels
    discovered = len(set(labels.tolist()))
    print(f"\nETA2 discovered {discovered} expertise domains "
          f"(generator used {dataset.n_true_domains} topical domains)")


if __name__ == "__main__":
    main()
