"""City-scale sensing: why allocation must know about travel.

A municipality crowdsources sensor readings (noise, air quality, traffic)
across a 10x10 km city.  Users have home locations; performing a task costs
its sensing time plus a round trip from home.  This example compares two
planners on the same city:

- travel-aware: Algorithm 1 with true per-pair times (the spatial
  generalisation of this library),
- travel-oblivious: the paper's model (sensing time only), with the
  unrealistic plan truncated at execution.

Run with::

    python examples/city_sensing.py
"""

from repro.experiments.spatial import spatial_comparison

SPEEDS = (2.0, 4.0, 8.0)  # km/h: walking, brisk cycling, driving in traffic


def main():
    result = spatial_comparison(speeds=SPEEDS, replications=3, seed=7)
    print(result.render())
    aware = result.quality_series["travel-aware"]
    oblivious = result.quality_series["travel-oblivious"]
    print()
    print(
        "At walking speed the travel-aware planner satisfies "
        f"{aware[0]:.0%} of tasks vs {oblivious[0]:.0%} for the oblivious plan — "
        "ignoring travel does not just waste time, it silently abandons whole "
        "neighbourhoods."
    )


if __name__ == "__main__":
    main()
