"""Repo-level pytest plugin: a per-test wall-clock timeout.

``pytest-timeout`` is deliberately not a dependency (the CI image and the
dev container run on the stdlib + numpy/scipy stack), so this implements
the one feature we need: any single test exceeding ``repro_test_timeout``
seconds fails with a clear message instead of hanging the suite — a chaos
or adversarial test that deadlocks should kill itself, not the nightly
job.

Implementation: ``signal.setitimer(ITIMER_REAL)`` raises in the test's
own thread when the clock runs out.  SIGALRM only exists on POSIX and
only works from the main thread; anywhere else the plugin silently
disables itself rather than breaking the run.  Set
``repro_test_timeout = 0`` (or run on an unsupported platform) to turn it
off; mark a legitimately slow test with ``@pytest.mark.timeout(<secs>)``
to give it its own budget.
"""

from __future__ import annotations

import signal
import threading

import pytest

_DEFAULT_TIMEOUT = 120.0


def pytest_addoption(parser):
    parser.addini(
        "repro_test_timeout",
        help="per-test wall-clock timeout in seconds (0 disables)",
        default=str(_DEFAULT_TIMEOUT),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): override the per-test wall-clock timeout for one test",
    )


def _supported() -> bool:
    return hasattr(signal, "setitimer") and threading.current_thread() is threading.main_thread()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = float(item.config.getini("repro_test_timeout"))
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        seconds = float(marker.args[0])
    if seconds <= 0 or not _supported():
        yield
        return

    def _expired(signum, frame):
        raise pytest.fail.Exception(
            f"test exceeded the {seconds:g}s per-test timeout (repro_test_timeout)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
